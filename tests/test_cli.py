"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(["--profile", "smoke", *argv])
    assert code == 0
    return capsys.readouterr().out


class TestInformational:
    def test_list(self, capsys):
        out = run_cli(capsys, "list")
        assert "4D_Q91" in out and "JOB" in out

    def test_describe(self, capsys):
        out = run_cli(capsys, "describe", "3D_Q15")
        assert "D=3" in out
        assert "POSP size" in out

    def test_guarantees(self, capsys):
        out = run_cli(capsys, "guarantees")
        assert "ideal ratio" in out
        assert "9.90" in out  # the paper's 2-epp 1.8-ratio bound

    def test_guarantees_custom_ratio(self, capsys):
        out = run_cli(capsys, "guarantees", "--ratio", "3.0")
        assert "ratio 3.0" in out


class TestRuns:
    def test_run_sb_default_qa(self, capsys):
        out = run_cli(capsys, "run", "3D_Q15")
        assert "sub-optimality" in out
        assert "spill" in out

    def test_run_native_with_qa(self, capsys):
        out = run_cli(capsys, "run", "3D_Q15", "--algorithm", "native",
                      "--qa", "0.001,0.001,0.001")
        assert "sub-optimality" in out

    def test_run_each_algorithm(self, capsys):
        for algorithm in ("pb", "sb", "ab"):
            out = run_cli(capsys, "run", "3D_Q15", "--algorithm", algorithm)
            assert "execution sequence" in out

    def test_evaluate(self, capsys):
        out = run_cli(capsys, "evaluate", "3D_Q15", "--algorithms", "sb")
        assert "MSOe" in out

    def test_advise(self, capsys):
        out = run_cli(capsys, "advise", "3D_Q15", "--radius", "2")
        assert "recommendation" in out


class TestExperiments:
    @pytest.mark.parametrize("name", ["fig8", "fig9", "lower-bound"])
    def test_cheap_experiments(self, capsys, name):
        out = run_cli(capsys, "experiment", name)
        assert "==" in out

    def test_table3(self, capsys):
        out = run_cli(capsys, "experiment", "table3")
        assert "Table 3" in out


class TestBuildAndSave:
    def test_build(self, capsys):
        out = run_cli(capsys, "build", "3D_Q15")
        assert "built ESS" in out

    def test_build_with_save(self, capsys, tmp_path):
        target = tmp_path / "q.npz"
        out = run_cli(capsys, "build", "3D_Q15", "--save", str(target))
        assert target.exists()
        assert "saved" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
