"""Tests for the guarantee-conformance layer.

Three levels:

* unit tests for every :class:`ConformanceMonitor` invariant, each with
  a tampered-input negative (the monitor must actually fire);
* hook tests — the sweep engines and the discovery driver report to an
  installed monitor, and stay strict no-ops when none is installed;
* suite tests — seeded randomized workloads through pb/sb/ab on every
  engine come back violation-free, injection comes back not-ok, and the
  ``repro check`` CLI exits accordingly.
"""

import dataclasses
import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro import (
    ContourSet,
    DataGenerator,
    ESS,
    ESSGrid,
    ForeignKey,
    Schema,
    SpillBound,
    SPJQuery,
    Table,
    fk_column,
    join,
    key_column,
)
from repro.cli import main
from repro.conformance.monitors import (
    ConformanceMonitor,
    active_monitor,
    install_monitor,
    monitoring,
    observe_engine_report,
    observe_sweep,
)
from repro.conformance.suite import (
    INJECT_MODES,
    SUITE_ENGINES,
    run_suite,
    run_workload,
)
from repro.conformance.workloads import (
    build_conformance_instance,
    clear_cache,
    knobs_for,
)
from repro.core.mso import evaluate_algorithm
from repro.engine.driver import EngineDiscoveryDriver, EngineReport, EngineStep
from tests.conftest import fuzz_seeds

pytestmark = pytest.mark.conformance

SUITE_SEEDS = fuzz_seeds([0, 101])


# ----------------------------------------------------------------------
# Monitor unit tests: every invariant, positive and tampered
# ----------------------------------------------------------------------

class TestSweepCheck:
    def test_clean_sweep_passes(self, toy_sb):
        monitor = ConformanceMonitor()
        monitor.check_sweep(np.ones(5), toy_sb, engine="loop")
        assert monitor.ok
        assert monitor.counters["sweeps"] == 1
        assert monitor.counters["sweeps[loop]"] == 1

    def test_sweep_beyond_guarantee_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        sub = np.ones(5)
        sub[3] = toy_sb.mso_guarantee() * 2.0
        monitor.check_sweep(sub, toy_sb, engine="loop")
        assert [v.invariant for v in monitor.violations] == ["mso-bound"]
        assert monitor.violations[0].details["location"] == 3

    def test_sweep_below_one_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        sub = np.ones(5)
        sub[1] = 0.5
        monitor.check_sweep(sub, toy_sb)
        assert [v.invariant for v in monitor.violations] == ["mso-bound"]

    def test_non_finite_sweep_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        monitor.check_sweep(np.array([1.0, np.nan]), toy_sb)
        assert not monitor.ok


class TestContourLadderCheck:
    def test_real_contours_pass(self, toy_contours):
        monitor = ConformanceMonitor()
        monitor.check_contour_ladder(toy_contours)
        assert monitor.ok

    def _fake(self, budgets, ratio=2.0):
        return SimpleNamespace(
            budgets=np.asarray(budgets, dtype=float),
            cost_ratio=ratio,
            ess=SimpleNamespace(min_cost=budgets[0], max_cost=budgets[-1]),
        )

    def test_non_increasing_ladder_fires(self):
        monitor = ConformanceMonitor()
        monitor.check_contour_ladder(self._fake([4.0, 2.0, 8.0]))
        assert [v.invariant for v in monitor.violations] == ["contour-ladder"]

    def test_broken_geometric_step_fires(self):
        monitor = ConformanceMonitor()
        monitor.check_contour_ladder(self._fake([1.0, 3.0, 6.0, 12.0]))
        assert not monitor.ok
        assert all(v.invariant == "contour-ladder"
                   for v in monitor.violations)


class TestRunCheck:
    def test_clean_traced_runs_pass(self, toy_pb, toy_sb, toy_ab):
        monitor = ConformanceMonitor()
        for algorithm in (toy_pb, toy_sb, toy_ab):
            for flat in (0, 150, 399):
                monitor.check_run(algorithm.run(flat, trace=True), algorithm)
        assert monitor.ok, monitor.violations
        assert monitor.counters["runs"] == 9

    def test_tampered_total_cost_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        result = toy_sb.run(150, trace=True)
        result.total_cost *= 1.01
        monitor.check_run(result, toy_sb)
        assert "charge-accounting" in monitor.violations_by_invariant()

    def test_tampered_learning_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        result = toy_sb.run(0, trace=True)
        tampered, broken = [], False
        for rec in result.executions:
            if not broken and rec.mode == "spill" and rec.completed:
                rec = dataclasses.replace(
                    rec, learned_selectivity=rec.learned_selectivity * 7 + 1)
                broken = True
            tampered.append(rec)
        assert broken  # the origin always has a completed spill
        result.executions = tampered
        monitor.check_run(result, toy_sb)
        assert "exact-learning" in monitor.violations_by_invariant()

    def test_tampered_repeat_counter_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        result = toy_sb.run(150, trace=True)
        result.num_repeat_executions += 1
        monitor.check_run(result, toy_sb)
        assert "repeat-bound" in monitor.violations_by_invariant()

    def test_truncated_sequence_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        result = toy_sb.run(399, trace=True)
        result.executions = result.executions[:-1]
        monitor.check_run(result, toy_sb)
        assert "sequence" in monitor.violations_by_invariant()

    def test_tampered_pb_budget_fires(self, toy_pb):
        monitor = ConformanceMonitor()
        result = toy_pb.run(150, trace=True)
        result.executions = [
            dataclasses.replace(result.executions[0],
                                budget=result.executions[0].budget * 1.5)
        ] + list(result.executions[1:])
        monitor.check_run(result, toy_pb)
        assert "lambda-accounting" in monitor.violations_by_invariant()

    @staticmethod
    def _first_completed_spill(result):
        for k, rec in enumerate(result.executions):
            if rec.mode == "spill" and rec.completed:
                return k, rec
        raise AssertionError("run recorded no completed spill")

    def test_duplicate_spill_after_exact_learning_fires(self, toy_sb):
        # Lemma 3.1: once an epp is learnt exactly, spilling on it again
        # breaks half-space pruning.
        monitor = ConformanceMonitor()
        result = toy_sb.run(0, trace=True)
        k, rec = self._first_completed_spill(result)
        result.executions = (list(result.executions[:k + 1]) + [rec]
                             + list(result.executions[k + 1:]))
        monitor.check_run(result, toy_sb)
        assert "halfspace" in monitor.violations_by_invariant()

    def test_bound_above_later_learning_fires(self, toy_sb):
        # A killed spill's lower bound sitting above a later exact learn
        # of the same epp breaks learned-bound monotonicity.
        monitor = ConformanceMonitor()
        result = toy_sb.run(0, trace=True)
        k, rec = self._first_completed_spill(result)
        qa_sel = float(toy_sb.ess.grid.selectivity(
            rec.spill_dim, result.qa_coords[rec.spill_dim]))
        fake_kill = dataclasses.replace(
            rec, completed=False, charged=rec.budget,
            learned_selectivity=qa_sel * 2.0)
        result.executions = ([fake_kill] + list(result.executions)
                             if k == 0 else
                             list(result.executions[:k]) + [fake_kill]
                             + list(result.executions[k:]))
        monitor.check_run(result, toy_sb)
        assert "learned-monotonic" in monitor.violations_by_invariant()

    def test_tampered_spill_budget_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        result = toy_sb.run(0, trace=True)
        k, rec = self._first_completed_spill(result)
        result.executions = (
            list(result.executions[:k])
            + [dataclasses.replace(rec, budget=rec.budget * 1.5)]
            + list(result.executions[k + 1:]))
        monitor.check_run(result, toy_sb)
        assert "budget-ladder" in monitor.violations_by_invariant()

    def test_tampered_ladder_start_fires(self, toy_ess, toy_contours):
        from repro.prior import make_prior

        prior = make_prior("sampled", toy_ess.query, toy_ess)
        scheduled = SpillBound(toy_ess, toy_contours, prior=prior)
        schedule = scheduled.prior_schedule()
        assert schedule.active
        monitor = ConformanceMonitor()
        result = scheduled.run(0, trace=True)
        monitor.check_run(result, scheduled)
        assert monitor.ok, monitor.violations
        band = schedule.qa_band(0)
        result.executions = [
            dataclasses.replace(result.executions[0], contour=band + 3)
        ] + list(result.executions[1:])
        monitor.check_run(result, scheduled)
        assert "ladder-start" in monitor.violations_by_invariant()


class TestBitIdentityCheck:
    def test_identical_arrays_pass(self, toy_sb):
        monitor = ConformanceMonitor()
        a = np.linspace(1.0, 2.0, 7)
        assert monitor.check_bit_identity(a, a.copy(), toy_sb)
        assert monitor.ok

    def test_single_ulp_difference_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        a = np.linspace(1.0, 2.0, 7)
        b = a.copy()
        b[4] = np.nextafter(b[4], 2.0)
        assert not monitor.check_bit_identity(a, b, toy_sb,
                                              ("loop", "batch"))
        violation = monitor.violations[0]
        assert violation.invariant == "bit-identity"
        assert violation.details["num_mismatches"] == 1
        assert violation.details["first_mismatch"] == 4

    def test_shape_mismatch_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        assert not monitor.check_bit_identity(np.ones(4), np.ones(5), toy_sb)
        assert not monitor.ok


class TestPriorInertCheck:
    def test_identical_sweeps_pass(self, toy_sb):
        monitor = ConformanceMonitor()
        a = np.linspace(1.0, 3.0, 9)
        assert monitor.check_prior_inertness(a, a.copy(), toy_sb)
        assert monitor.ok

    def test_perturbed_uniform_sweep_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        a = np.linspace(1.0, 3.0, 9)
        b = a.copy()
        b[2] = np.nextafter(b[2], 4.0)
        assert not monitor.check_prior_inertness(a, b, toy_sb)
        violation = monitor.violations[0]
        assert violation.invariant == "prior-inert"
        assert violation.details["num_mismatches"] == 1
        assert violation.details["first_mismatch"] == 2

    def test_shape_mismatch_fires(self, toy_sb):
        monitor = ConformanceMonitor()
        assert not monitor.check_prior_inertness(np.ones(4), np.ones(5),
                                                 toy_sb)
        assert [v.invariant for v in monitor.violations] == ["prior-inert"]


class TestEngineReportCheck:
    def test_overspend_and_relearn_fire(self):
        monitor = ConformanceMonitor()
        report = EngineReport(
            steps=[
                EngineStep(contour=1, plan_key="P", mode="spill",
                           spill_epp="e1", budget=10.0, cost_spent=12.0,
                           completed=True, learned_selectivity=1e-3),
                EngineStep(contour=2, plan_key="P", mode="spill",
                           spill_epp="e1", budget=20.0, cost_spent=5.0,
                           completed=True, learned_selectivity=1e-3),
            ],
            total_cost=17.0,
            completed_plan_key="",
        )
        monitor.check_engine_report(report, None)
        invariants = monitor.violations_by_invariant()
        assert "engine-budget" in invariants  # overspend + double learning
        assert len(invariants["engine-budget"]) == 2
        assert "sequence" in invariants  # no completed plan


class TestMonitorPlumbing:
    def test_jsonl_records_are_parseable(self, toy_sb, tmp_path):
        path = tmp_path / "violations.jsonl"
        monitor = ConformanceMonitor(jsonl_path=str(path))
        assert path.exists() and path.read_text() == ""  # created up front
        with monitor.context(seed=42, workload="w"):
            sub = np.ones(3)
            sub[0] = toy_sb.mso_guarantee() * 3.0
            monitor.check_sweep(sub, toy_sb, engine="loop")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["invariant"] == "mso-bound"
        assert record["algorithm"] == "sb"
        assert record["engine"] == "loop"
        assert record["seed"] == 42 and record["workload"] == "w"

    def test_context_restores_on_exit(self, toy_sb):
        monitor = ConformanceMonitor()
        with monitor.context(seed=1):
            pass
        monitor.check_sweep(np.array([0.5]), toy_sb)
        assert "seed" not in monitor.violations[0].details


# ----------------------------------------------------------------------
# Hook tests: engines and driver report to the installed monitor
# ----------------------------------------------------------------------

class TestHooks:
    def test_hooks_are_noops_when_detached(self, toy_sb):
        assert active_monitor() is None
        observe_sweep(toy_sb, np.full(3, 0.5), "batch")  # would violate
        observe_engine_report(EngineReport(), toy_sb)
        assert active_monitor() is None

    def test_batch_sweep_is_observed(self, toy_sb):
        with monitoring() as monitor:
            evaluate_algorithm(toy_sb, engine="batch")
        assert monitor.counters.get("sweeps[batch]", 0) >= 1
        assert monitor.ok
        assert active_monitor() is None  # detached on exit

    def test_loop_sweep_is_observed(self, toy_sb):
        with monitoring() as monitor:
            evaluate_algorithm(toy_sb, engine="loop")
        assert monitor.counters.get("sweeps[loop]", 0) == 1
        assert monitor.ok

    def test_install_returns_previous(self):
        first = ConformanceMonitor()
        assert install_monitor(first) is None
        second = ConformanceMonitor()
        assert install_monitor(second) is first
        assert install_monitor(None) is second
        assert active_monitor() is None


@pytest.fixture(scope="module")
def driver_setup():
    """A tiny engine-backed instance for driver-monitoring tests."""
    schema = Schema("confdrv", tables=[
        Table("dim", 150, [key_column("d_id", 150)]),
        Table("fact", 5_000, [fk_column("f_dim_id", 150, indexed=True),
                              fk_column("f_cust_id", 200, indexed=True)]),
        Table("cust", 200, [key_column("c_id", 200)]),
    ], foreign_keys=[
        ForeignKey("fact", "f_dim_id", "dim", "d_id"),
        ForeignKey("fact", "f_cust_id", "cust", "c_id"),
    ])
    query = SPJQuery("confdrv2d", schema, ["dim", "fact", "cust"], joins=[
        join("dim", "d_id", "fact", "f_dim_id", selectivity=6e-3,
             error_prone=True),
        join("cust", "c_id", "fact", "f_cust_id", selectivity=4e-3,
             error_prone=True),
    ])
    gen = DataGenerator(schema, seed=23)
    gen.generate_table("dim")
    gen.generate_table("cust")
    gen.generate_table("fact", fk_skew={"f_dim_id": 0.8})
    ess = ESS.build(query, ESSGrid(2, resolution=8, sel_min=1e-4))
    return gen, ess, ContourSet(ess)


class TestDriverHook:
    def test_engine_run_is_observed(self, driver_setup):
        gen, ess, contours = driver_setup
        driver = EngineDiscoveryDriver(SpillBound(ess, contours), gen)
        with monitoring() as monitor:
            report = driver.run()
        assert report.completed_plan_key
        assert monitor.counters.get("engine_reports", 0) == 1
        assert monitor.ok, monitor.violations

    def test_unmonitored_run_matches_monitored(self, driver_setup):
        gen, ess, contours = driver_setup
        driver = EngineDiscoveryDriver(SpillBound(ess, contours), gen)
        bare = driver.run()
        with monitoring():
            observed = driver.run()
        assert bare.total_cost == observed.total_cost
        assert bare.completed_plan_key == observed.completed_plan_key


# ----------------------------------------------------------------------
# Workload generator
# ----------------------------------------------------------------------

class TestConformanceWorkloads:
    def test_knobs_deterministic_and_in_range(self):
        for seed in range(20):
            for d in (2, 3, 4):
                res, ratio, noise = knobs_for(seed, d)
                assert (res, ratio, noise) == knobs_for(seed, d)
                assert ratio in (1.8, 2.0, 2.5)
                assert noise in (0.0, 0.05, 0.15)

    def test_same_seed_rebuilds_bit_identically(self):
        clear_cache()
        a = build_conformance_instance(5, use_cache=False)
        clear_cache()
        b = build_conformance_instance(5, use_cache=False)
        assert a.name == b.name
        assert np.array_equal(a.ess.optimal_cost, b.ess.optimal_cost)
        assert np.array_equal(a.ess.plan_ids, b.ess.plan_ids)
        assert np.array_equal(a.contours.budgets, b.contours.budgets)

    def test_different_seeds_differ(self):
        a = build_conformance_instance(0)
        b = build_conformance_instance(1)
        assert (a.name, a.ess.optimal_cost.shape) != \
            (b.name, b.ess.optimal_cost.shape) or \
            not np.array_equal(a.ess.optimal_cost, b.ess.optimal_cost)

    def test_provenance_supports_worker_rebuild(self):
        from repro.perf.parallel import _build_algorithm, spec_for

        instance = build_conformance_instance(3)
        assert instance.ess.provenance["kind"] == "conformance"
        sb = SpillBound(instance.ess, instance.contours)
        spec = spec_for(sb)
        assert spec is not None and spec.kind == "conformance"
        rebuilt = _build_algorithm(spec)
        assert np.array_equal(rebuilt.ess.optimal_cost,
                              instance.ess.optimal_cost)
        assert np.array_equal(rebuilt.contours.budgets,
                              instance.contours.budgets)


# ----------------------------------------------------------------------
# The suite itself
# ----------------------------------------------------------------------

class TestConformanceSuite:
    @pytest.mark.parametrize("seed", SUITE_SEEDS)
    def test_single_workload_conforms(self, seed):
        monitor = ConformanceMonitor()
        outcome = run_workload(seed, monitor, trace_samples=2)
        assert monitor.ok, monitor.violations
        assert set(outcome.engines) == {"pb", "sb", "ab"}
        for per_engine in outcome.engines.values():
            assert per_engine["loop"] == "checked"
            assert per_engine["batch"] == "identical"
            assert per_engine["parallel"] in ("identical", "skipped")
        assert outcome.traced_runs >= 2 * 3

    def test_small_suite_clean(self, tmp_path):
        path = tmp_path / "violations.jsonl"
        report = run_suite(num_workloads=2, base_seed=0,
                           trace_samples=2, jsonl_path=str(path))
        assert report.ok
        summary = report.summary()
        assert summary["workloads"] == 2
        assert summary["loop_sweeps"] == 2 * 3
        # Two batched sweeps per algorithm: the loop/batch identity
        # check plus the uniform-prior-twin inertness check.
        assert summary["batch_sweeps"] == 2 * 3 * 2
        assert summary["violations"] == 0
        assert summary["bit_identity_mismatches"] == 0
        assert path.exists() and path.read_text() == ""

    def test_loop_only_suite(self):
        report = run_suite(num_workloads=1, engines=("loop",),
                           trace_samples=1)
        assert report.ok
        summary = report.summary()
        assert summary["batch_sweeps"] == 0
        assert summary["parallel_sweeps"] == 0
        assert summary["bit_identity_checks"] == 0

    @pytest.mark.parametrize("mode", INJECT_MODES)
    def test_injection_fails_the_suite(self, mode):
        report = run_suite(num_workloads=1, trace_samples=1, inject=mode)
        assert not report.ok
        expected = {"mso": "mso-bound", "learning": "exact-learning"}[mode]
        assert expected in report.monitor.violations_by_invariant()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            run_suite(num_workloads=1, engines=("loop", "bogus"))

    def test_unknown_injection_rejected(self):
        with pytest.raises(ValueError, match="injection"):
            run_suite(num_workloads=1, trace_samples=0, inject="nope")


class TestCheckCommand:
    def test_clean_check_exits_zero(self, capsys):
        code = main(["check", "--workloads", "1", "--trace-samples", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "conformance ok" in out

    def test_injected_check_exits_nonzero(self, capsys, tmp_path):
        path = tmp_path / "violations.jsonl"
        code = main(["check", "--workloads", "1", "--trace-samples", "1",
                     "--inject", "mso", "--jsonl", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "conformance FAILED" in out
        assert "VIOLATION [mso-bound]" in out
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records and records[0]["invariant"] == "mso-bound"

    def test_verbose_prints_per_workload(self, capsys):
        code = main(["check", "--workloads", "1", "--trace-samples", "1",
                     "--verbose"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[1/1] seed 0" in out


# ----------------------------------------------------------------------
# Full-scale acceptance run (CI slow job; tier-1 deselects it)
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_full_scale_suite_200_workloads():
    """The acceptance criterion: 200 seeded randomized workloads across
    pb/sb/ab x loop/batch/parallel, zero violations, zero bit-identity
    mismatches."""
    report = run_suite(num_workloads=200, base_seed=0)
    summary = report.summary()
    assert report.ok, report.monitor.violations[:10]
    assert summary["workloads"] == 200
    assert summary["loop_sweeps"] == 200 * 3
    assert summary["batch_sweeps"] == 200 * 3
    assert summary["bit_identity_mismatches"] == 0
    assert summary["violations"] == 0
