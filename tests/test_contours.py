"""Unit tests for iso-cost contour extraction."""

import numpy as np
import pytest

from repro import ContourSet, DiscoveryError


class TestBudgetLadder:
    def test_first_budget_is_cmin(self, toy_ess):
        contours = ContourSet(toy_ess)
        assert contours.budget(1) == pytest.approx(toy_ess.min_cost)

    def test_last_budget_is_cmax(self, toy_ess):
        contours = ContourSet(toy_ess)
        assert contours.budget(contours.num_contours) == pytest.approx(
            toy_ess.max_cost
        )

    def test_intermediate_budgets_double(self, toy_ess):
        contours = ContourSet(toy_ess, cost_ratio=2.0)
        for i in range(2, contours.num_contours - 1):
            assert contours.budget(i) == pytest.approx(
                2.0 * contours.budget(i - 1)
            )

    def test_custom_ratio(self, toy_ess):
        doubling = ContourSet(toy_ess, cost_ratio=2.0)
        coarse = ContourSet(toy_ess, cost_ratio=4.0)
        assert coarse.num_contours < doubling.num_contours

    def test_ratio_must_exceed_one(self, toy_ess):
        with pytest.raises(DiscoveryError):
            ContourSet(toy_ess, cost_ratio=1.0)


class TestBands:
    def test_bands_partition_grid(self, toy_ess, toy_contours):
        total = sum(len(c.points) for c in toy_contours)
        assert total == toy_ess.grid.num_points

    def test_band_costs_within_budget_window(self, toy_ess, toy_contours):
        for contour in toy_contours:
            if len(contour.points) == 0:
                continue
            costs = toy_ess.optimal_cost[contour.points]
            assert (costs <= contour.budget * (1 + 1e-9)).all()
            if contour.index > 1:
                lower = toy_contours.budget(contour.index - 1)
                assert (costs > lower * (1 - 1e-9)).all()

    def test_band_of_matches_membership(self, toy_ess, toy_contours):
        for flat in range(0, toy_ess.grid.num_points, 37):
            index = toy_contours.band_of(flat)
            assert flat in set(toy_contours.contour(index).points.tolist())

    def test_origin_in_first_contour(self, toy_ess, toy_contours):
        origin_flat = toy_ess.grid.flat_index(toy_ess.grid.origin)
        assert toy_contours.band_of(origin_flat) == 1

    def test_terminus_in_last_contour(self, toy_ess, toy_contours):
        terminus_flat = toy_ess.grid.flat_index(toy_ess.grid.terminus)
        assert toy_contours.band_of(terminus_flat) == toy_contours.num_contours

    def test_out_of_range_contour_index(self, toy_contours):
        with pytest.raises(DiscoveryError):
            toy_contours.contour(0)
        with pytest.raises(DiscoveryError):
            toy_contours.contour(toy_contours.num_contours + 1)


class TestContourContents:
    def test_coords_match_points(self, toy_ess, toy_contours):
        grid = toy_ess.grid
        contour = next(c for c in toy_contours if len(c.points) > 2)
        for row, flat in zip(contour.coords, contour.points):
            assert tuple(int(v) for v in row) == grid.coords_of(int(flat))

    def test_plan_ids_match_surface(self, toy_ess, toy_contours):
        contour = next(c for c in toy_contours if len(c.points) > 0)
        assert np.array_equal(contour.plan_ids,
                              toy_ess.plan_ids[contour.points])

    def test_density_counts_unique_plans(self, toy_contours):
        for contour in toy_contours:
            assert contour.density == len(set(contour.plan_ids.tolist()))

    def test_max_density_is_max(self, toy_contours):
        assert toy_contours.max_density == max(toy_contours.densities())

    def test_repr_mentions_rho(self, toy_contours):
        assert "rho=" in repr(toy_contours)
