"""Unit tests for the cost model: monotonicity and crossovers."""

import numpy as np
import pytest

from repro import CostModel, DEFAULT_COST_MODEL


class TestMonotonicity:
    """Every formula must be non-decreasing in each cardinality — the
    ingredient from which Plan Cost Monotonicity is built."""

    cards = np.geomspace(1, 1e9, 40)

    def test_scan_seq(self):
        model = DEFAULT_COST_MODEL
        assert (np.diff(model.scan_seq(self.cards, self.cards * 0.1)) > 0).all()

    def test_scan_index(self):
        model = DEFAULT_COST_MODEL
        assert (np.diff(model.scan_index(1e8, self.cards)) > 0).all()

    def test_join_hash_in_each_argument(self):
        model = DEFAULT_COST_MODEL
        assert (np.diff(model.join_hash(self.cards, 1e5, 1e6)) > 0).all()
        assert (np.diff(model.join_hash(1e5, self.cards, 1e6)) > 0).all()
        assert (np.diff(model.join_hash(1e5, 1e5, self.cards)) > 0).all()

    def test_join_merge(self):
        model = DEFAULT_COST_MODEL
        assert (np.diff(model.join_merge(self.cards, 1e5, 1e6)) > 0).all()
        assert (np.diff(model.join_merge(1e5, 1e5, self.cards)) > 0).all()

    def test_join_nl(self):
        model = DEFAULT_COST_MODEL
        assert (np.diff(model.join_nl(self.cards, 1e3, 1e4)) > 0).all()

    def test_join_inl(self):
        model = DEFAULT_COST_MODEL
        assert (np.diff(model.join_inl(self.cards, 1e6, 1e5)) > 0).all()
        assert (np.diff(model.join_inl(1e4, 1e6, self.cards)) > 0).all()


class TestCrossovers:
    """Operator-choice crossovers are what give the POSP its structure."""

    def test_index_scan_wins_at_low_selectivity(self):
        model = DEFAULT_COST_MODEL
        base = 1e8
        assert model.scan_index(base, 100) < model.scan_seq(base, 100)
        assert model.scan_index(base, base) > model.scan_seq(base, base)

    def test_inl_wins_for_small_outer(self):
        model = DEFAULT_COST_MODEL
        inl = model.join_inl(10, 1e8, 10)
        hj = model.join_hash(10, 1e8, 10)
        assert inl < hj

    def test_hash_wins_for_large_outer(self):
        model = DEFAULT_COST_MODEL
        inl = model.join_inl(1e8, 1e6, 1e8)
        hj = model.join_hash(1e8, 1e6, 1e8)
        assert hj < inl

    def test_hash_spill_surcharge_kicks_in(self):
        model = DEFAULT_COST_MODEL
        small = model.join_hash(1e6, model.hash_mem_tuples * 0.9, 1e6)
        big = model.join_hash(1e6, model.hash_mem_tuples * 1.1, 1e6)
        linear_delta = model.hash_build * model.hash_mem_tuples * 0.2
        assert big - small > linear_delta * 0.5  # more than plain growth

    def test_nl_only_viable_when_tiny(self):
        model = DEFAULT_COST_MODEL
        assert model.join_nl(10, 10, 5) < model.join_hash(10, 10, 5)
        assert model.join_nl(1e5, 1e5, 1e5) > model.join_hash(1e5, 1e5, 1e5)


class TestNoiseModel:
    def test_zero_delta_returns_self(self):
        assert DEFAULT_COST_MODEL.with_noise(0.0) is DEFAULT_COST_MODEL

    def test_noise_bounded(self):
        noisy = DEFAULT_COST_MODEL.with_noise(0.3, seed=1)
        for field in ("seq_tuple", "hash_build", "output_tuple"):
            ratio = getattr(noisy, field) / getattr(DEFAULT_COST_MODEL, field)
            assert 1 / 1.3 - 1e-9 <= ratio <= 1.3 + 1e-9

    def test_noise_deterministic_per_seed(self):
        a = DEFAULT_COST_MODEL.with_noise(0.2, seed=7)
        b = DEFAULT_COST_MODEL.with_noise(0.2, seed=7)
        assert a == b

    def test_custom_constants(self):
        model = CostModel(seq_tuple=2.0)
        assert model.scan_seq(100, 0) == pytest.approx(
            model.startup + 200.0
        )

    def test_scalar_and_array_agree(self):
        model = DEFAULT_COST_MODEL
        scalar = model.join_hash(1e4, 1e5, 1e6)
        array = model.join_hash(np.array([1e4]), np.array([1e5]),
                                np.array([1e6]))
        assert float(array[0]) == pytest.approx(float(scalar))
