"""Unit tests for synthetic data generation."""

import numpy as np
import pytest

from repro import DataGenerator, SchemaError, scale_cardinalities
from repro.catalog.datagen import TableData, zipf_weights
from tests.conftest import make_toy_schema


class TestZipfWeights:
    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 1.0)

    def test_positive_skew_decreasing(self):
        weights = zipf_weights(10, 1.0)
        assert (np.diff(weights) < 0).all()
        assert weights[0] == pytest.approx(1.0)


class TestTableData:
    def test_column_access(self):
        data = TableData("t", {"a": np.arange(5), "b": np.ones(5)})
        assert len(data) == 5
        assert data.column("a")[3] == 3

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableData("t", {"a": np.arange(5), "b": np.arange(6)})

    def test_unknown_column(self):
        data = TableData("t", {"a": np.arange(5)})
        with pytest.raises(SchemaError):
            data.column("z")


class TestDataGenerator:
    @pytest.fixture
    def schema(self):
        return make_toy_schema()

    def test_primary_keys_are_dense(self, schema):
        gen = DataGenerator(schema, seed=1)
        part = gen.generate_table("part", num_rows=100)
        assert np.array_equal(part.column("p_partkey"), np.arange(100))

    def test_foreign_keys_within_parent_domain(self, schema):
        gen = DataGenerator(schema, seed=1)
        gen.generate_table("part", num_rows=50)
        lineitem = gen.generate_table("lineitem", num_rows=500)
        fks = lineitem.column("l_partkey")
        assert fks.min() >= 0 and fks.max() < 50

    def test_fk_without_generated_parent_uses_catalog_domain(self, schema):
        gen = DataGenerator(schema, seed=1)
        lineitem = gen.generate_table("lineitem", num_rows=100)
        assert lineitem.column("l_orderkey").max() < 15_000_000

    def test_determinism(self, schema):
        a = DataGenerator(schema, seed=9).generate_table("lineitem", 200)
        b = DataGenerator(schema, seed=9).generate_table("lineitem", 200)
        assert np.array_equal(a.column("l_partkey"), b.column("l_partkey"))

    def test_different_seed_differs(self, schema):
        a = DataGenerator(schema, seed=1).generate_table("lineitem", 500)
        b = DataGenerator(schema, seed=2).generate_table("lineitem", 500)
        assert not np.array_equal(a.column("l_partkey"), b.column("l_partkey"))

    def test_skew_concentrates_references(self, schema):
        gen = DataGenerator(schema, seed=3)
        gen.generate_table("part", num_rows=1_000)
        skewed = gen.generate_table("lineitem", num_rows=20_000,
                                    fk_skew={"l_partkey": 1.5})
        counts = np.bincount(skewed.column("l_partkey"), minlength=1_000)
        top_share = np.sort(counts)[::-1][:10].sum() / counts.sum()
        assert top_share > 0.3  # ten parents absorb a large share

    def test_zero_rows_rejected(self, schema):
        with pytest.raises(SchemaError):
            DataGenerator(schema).generate_table("part", num_rows=0)

    def test_table_accessor_generates_lazily(self, schema):
        gen = DataGenerator(schema, seed=1)
        small = schema.table("part")
        # Lazy default generation uses the catalog cardinality, which is
        # large; use an explicit small generation instead and fetch it.
        gen.generate_table("part", num_rows=10)
        assert len(gen.table("part")) == 10
        assert small.cardinality == 2_000_000  # catalog untouched


class TestScaleCardinalities:
    def test_respects_budget(self):
        schema = make_toy_schema()
        scaled = scale_cardinalities(schema, budget_rows=10_000)
        assert sum(scaled.values()) <= 11_000

    def test_floor_preserved(self):
        schema = make_toy_schema()
        scaled = scale_cardinalities(schema, budget_rows=100, floor=8)
        assert min(scaled.values()) >= 8

    def test_noop_when_budget_sufficient(self):
        schema = make_toy_schema()
        scaled = scale_cardinalities(schema, budget_rows=10**12)
        assert scaled["part"] == 2_000_000
