"""Tests for the dependent-selectivity (SI violation) extension."""

import numpy as np
import pytest

from repro import QueryError, evaluate_algorithm
from repro.ess.dependence import (
    CorrelatedSpillBound,
    CorrelatedWorld,
    CorrelationSpec,
    correlated_plan_cost,
    joint_correction,
)
from repro.optimizer.plans import plan_cost


class TestCorrelationModel:
    def test_theta_zero_is_independence(self):
        assert joint_correction(0.01, 0.02, 0.0) == pytest.approx(1.0)

    def test_theta_one_is_min_rule(self):
        sa, sb = 0.01, 0.02
        joint = sa * sb * joint_correction(sa, sb, 1.0)
        assert joint == pytest.approx(min(sa, sb))

    def test_correction_at_least_one(self):
        rng = np.random.default_rng(0)
        sa = rng.uniform(1e-6, 1, 100)
        sb = rng.uniform(1e-6, 1, 100)
        assert (joint_correction(sa, sb, 0.5) >= 1.0 - 1e-12).all()

    def test_correction_monotone_in_theta(self):
        values = [joint_correction(1e-3, 1e-4, t) for t in (0.0, 0.4, 0.9)]
        assert values == sorted(values)

    def test_joint_monotone_in_each_marginal(self):
        sels = np.geomspace(1e-5, 1, 30)
        joint = sels * 1e-3 * joint_correction(sels, 1e-3, 0.6)
        assert (np.diff(joint) > -1e-15).all()

    def test_spec_validation(self):
        with pytest.raises(QueryError):
            CorrelationSpec(0, 0, 0.5)
        with pytest.raises(QueryError):
            CorrelationSpec(0, 1, 1.5)


class TestCorrelatedCosting:
    def test_zero_theta_matches_si_cost(self, toy_ess):
        query = toy_ess.query
        spec = CorrelationSpec(0, 1, 0.0)
        env = {0: 1e-4, 1: 1e-3}
        for plan in toy_ess.plans:
            si = plan_cost(plan, query, toy_ess.cost_model, env)
            corr = correlated_plan_cost(plan, query, toy_ess.cost_model,
                                        env, [spec])
            assert corr == pytest.approx(si)

    def test_positive_theta_inflates_cost(self, toy_ess):
        query = toy_ess.query
        env = {0: 1e-4, 1: 1e-3}
        spec = CorrelationSpec(0, 1, 0.6)
        for plan in toy_ess.plans:
            si = plan_cost(plan, query, toy_ess.cost_model, env)
            corr = correlated_plan_cost(plan, query, toy_ess.cost_model,
                                        env, [spec])
            assert corr >= si * (1 - 1e-9)

    def test_world_optimal_below_every_plan(self, toy_ess):
        world = CorrelatedWorld(toy_ess, [CorrelationSpec(0, 1, 0.4)])
        optimal = world.optimal_cost()
        for pid in range(toy_ess.posp_size):
            assert (world.plan_cost_array(pid) >= optimal - 1e-9).all()

    def test_world_pcm_preserved(self, toy_ess):
        world = CorrelatedWorld(toy_ess, [CorrelationSpec(0, 1, 0.8)])
        shape = toy_ess.grid.shape
        cost = world.plan_cost_array(0).reshape(shape)
        assert (np.diff(cost, axis=0) > -1e-9).all()
        assert (np.diff(cost, axis=1) > -1e-9).all()


class TestCorrelatedDiscovery:
    def test_theta_zero_reproduces_spillbound(self, toy_ess, toy_contours,
                                              toy_sb):
        csb = CorrelatedSpillBound(toy_ess, [CorrelationSpec(0, 1, 0.0)],
                                   toy_contours)
        for flat in [0, 99, 250, 399]:
            assert csb.run(flat).total_cost == pytest.approx(
                toy_sb.run(flat).total_cost
            )

    def test_terminates_under_strong_correlation(self, toy_ess,
                                                 toy_contours):
        csb = CorrelatedSpillBound(toy_ess, [CorrelationSpec(0, 1, 0.9)],
                                   toy_contours)
        for flat in range(0, toy_ess.grid.num_points, 27):
            result = csb.run(flat)
            assert result.suboptimality >= 1.0 - 1e-9

    def test_correlation_changes_the_profile(self, toy_ess, toy_contours):
        """SI violation measurably shifts the sub-optimality profile.

        (The direction is query-dependent: both the algorithm's charges
        and the corrected oracle inflate, so the ratio can move either
        way — the 3D_Q15 harness case degrades, this 2-D toy improves.)
        """
        profiles = []
        for theta in (0.0, 0.5):
            csb = CorrelatedSpillBound(
                toy_ess, [CorrelationSpec(0, 1, theta)], toy_contours
            )
            profiles.append(evaluate_algorithm(csb).suboptimality)
        assert not np.allclose(profiles[0], profiles[1])
        assert (profiles[1] >= 1.0 - 1e-9).all()

    def test_harness_runner(self):
        from repro.bench.harness import run_extension_dependence

        rows = run_extension_dependence("3D_Q15", thetas=(0.0, 0.5),
                                        profile="smoke")
        assert rows[0]["worst_correction"] == pytest.approx(1.0)
        assert rows[1]["worst_correction"] > 1.0
        assert rows[1]["sb_msoe"] >= rows[0]["sb_msoe"] - 1e-9
