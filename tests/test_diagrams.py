"""Tests for plan-diagram analysis."""

import numpy as np
import pytest

from repro.ess.diagrams import (
    gini_coefficient,
    plan_diagram_stats,
    reduction_curve,
    switching_profile,
)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        assert gini_coefficient([0, 0, 0, 100]) > 0.7

    def test_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    def test_scale_invariant(self):
        a = gini_coefficient([1, 2, 3, 10])
        b = gini_coefficient([10, 20, 30, 100])
        assert a == pytest.approx(b)


class TestDiagramStats:
    def test_fractions_sum_to_one(self, toy_ess):
        stats = plan_diagram_stats(toy_ess)
        assert stats["fractions"].sum() == pytest.approx(1.0)
        assert stats["num_plans"] == toy_ess.posp_size

    def test_largest_share_consistent(self, toy_ess):
        stats = plan_diagram_stats(toy_ess)
        counts = np.bincount(toy_ess.plan_ids)
        assert stats["largest_share"] == pytest.approx(
            counts.max() / toy_ess.grid.num_points
        )

    def test_real_diagrams_are_skewed(self, toy_ess):
        """A few plans dominate; that skew is the anorexic-reduction
        motivation."""
        stats = plan_diagram_stats(toy_ess)
        assert stats["gini"] > 0.2
        assert stats["largest_share"] > 1.0 / stats["num_plans"]


class TestSwitchingProfile:
    def test_profile_shape(self, toy_ess):
        profile = switching_profile(toy_ess)
        assert len(profile) == toy_ess.grid.num_dims
        assert all(p >= 0 for p in profile)

    def test_switches_bounded_by_axis_length(self, toy_ess):
        profile = switching_profile(toy_ess)
        for dim, switches in enumerate(profile):
            assert switches <= toy_ess.grid.resolution[dim] - 1

    def test_multi_plan_diagram_switches_somewhere(self, toy_ess):
        if toy_ess.posp_size > 1:
            assert sum(switching_profile(toy_ess)) > 0


class TestReductionCurve:
    def test_rho_monotone_nonincreasing(self, toy_ess, toy_contours):
        rows = reduction_curve(toy_ess, toy_contours)
        rhos = [r["rho"] for r in rows]
        assert rhos == sorted(rhos, reverse=True)

    def test_bouquet_shrinks_with_lambda(self, toy_ess, toy_contours):
        rows = reduction_curve(toy_ess, toy_contours, lams=(0.0, 1.0))
        assert rows[1]["bouquet_size"] <= rows[0]["bouquet_size"]

    def test_anorexic_observation(self, toy_ess, toy_contours):
        """A modest bloat allowance already collapses the bouquet."""
        rows = reduction_curve(toy_ess, toy_contours, lams=(0.0, 0.2))
        assert rows[1]["rho"] <= rows[0]["rho"]
