"""Differential tests: every plan computes the same answer.

The strongest correctness property available to a query engine: all
physical plans for a query are semantically equivalent, so executing
*different POSP plans* over the same generated data must produce the
same result multiset.  This cross-checks the optimizer's plan
construction (join predicates attached at the right nodes, orientation
conventions) against the engine's operator implementations.
"""

import numpy as np
import pytest

from repro import (
    ContourSet,
    DataGenerator,
    ESS,
    ESSGrid,
    ForeignKey,
    Schema,
    SPJQuery,
    Table,
    execute_plan,
    filter_pred,
    fk_column,
    join,
    key_column,
)


@pytest.fixture(scope="module")
def setup():
    schema = Schema("diff", tables=[
        Table("a", 120, [key_column("a_id", 120), fk_column("a_x", 6)]),
        Table("f", 3_000, [fk_column("f_a_id", 120, indexed=True),
                           fk_column("f_b_id", 80, indexed=True)]),
        Table("b", 80, [key_column("b_id", 80), fk_column("b_y", 5)]),
    ], foreign_keys=[
        ForeignKey("f", "f_a_id", "a", "a_id"),
        ForeignKey("f", "f_b_id", "b", "b_id"),
    ])
    query = SPJQuery("diff2d", schema, ["a", "f", "b"], joins=[
        join("a", "a_id", "f", "f_a_id", selectivity=1 / 120,
             error_prone=True),
        join("b", "b_id", "f", "f_b_id", selectivity=1 / 80,
             error_prone=True),
    ], filters=[
        filter_pred("a", "a_x", "=", 2, selectivity=1 / 6),
        filter_pred("b", "b_y", "=", 1, selectivity=1 / 5),
    ])
    gen = DataGenerator(schema, seed=23)
    gen.generate_table("a")
    gen.generate_table("b")
    gen.generate_table("f", fk_skew={"f_a_id": 0.7})
    ess = ESS.build(query, ESSGrid(2, resolution=12, sel_min=1e-4))
    return query, gen, ess


def brute_force_count(gen):
    a = gen.table("a")
    f = gen.table("f")
    b = gen.table("b")
    a_keep = set(a.column("a_id")[a.column("a_x") == 2].tolist())
    b_keep = set(b.column("b_id")[b.column("b_y") == 1].tolist())
    mask = np.isin(f.column("f_a_id"), list(a_keep)) & np.isin(
        f.column("f_b_id"), list(b_keep)
    )
    return int(mask.sum())


class TestPlanEquivalence:
    def test_every_posp_plan_same_count(self, setup):
        query, gen, ess = setup
        expected = brute_force_count(gen)
        for plan in ess.plans:
            outcome = execute_plan(plan, query, gen, ess.cost_model)
            assert outcome.completed
            assert outcome.rows_out == expected, plan.key

    def test_result_multisets_identical(self, setup):
        """Beyond counts: the same bag of fact rows joins through."""
        query, gen, ess = setup
        reference = None
        for plan in ess.plans[: min(6, ess.posp_size)]:
            outcome = execute_plan(plan, query, gen, ess.cost_model)
            # Project onto the fact columns to normalize column order.
            # Rebuild operators to learn the layout: simplest is to
            # re-execute and collect via a fresh run with hand access.
            assert outcome.completed
            key = outcome.rows_out
            if reference is None:
                reference = key
            assert key == reference

    def test_engine_cost_ordering_tracks_model(self, setup):
        """The cost model must rank plans roughly like real execution:
        the modelled-cheapest plan should not be among the most
        expensive to actually run."""
        query, gen, ess = setup
        qa_flat = ess.grid.flat_index(ess.grid.snap(
            tuple(p.selectivity for p in query.epps)
        ))
        measured = {}
        for pid, plan in enumerate(ess.plans):
            measured[pid] = execute_plan(
                plan, query, gen, ess.cost_model
            ).cost_spent
        best_model_pid = int(ess.plan_ids[qa_flat])
        actual_costs = sorted(measured.values())
        # The model's pick lands in the cheaper half of real costs.
        midpoint = actual_costs[len(actual_costs) // 2]
        assert measured[best_model_pid] <= midpoint * 1.25

    def test_spill_selectivity_consistent_across_plans(self, setup):
        """Spilling different plans on the same epp learns (nearly) the
        same selectivity.

        Under exact selectivity independence the node-local observation
        is plan-invariant; on real generated data mild correlations make
        it depend slightly on which other joins were applied below the
        epp's node — so we assert tight relative agreement, not
        equality (the residual spread is precisely the SI violation the
        dependence extension studies)."""
        from repro.engine.spill import spill_root_key

        query, gen, ess = setup
        epp = query.epps[0].name
        observed = []
        for plan in ess.plans[: min(5, ess.posp_size)]:
            outcome = execute_plan(plan, query, gen, ess.cost_model,
                                   spill_epp=epp)
            assert outcome.completed
            observed.append(
                outcome.selectivity_of(spill_root_key(plan, epp))
            )
        assert max(observed) <= min(observed) * 1.25
