"""Unit tests for shared discovery machinery."""

import math

import pytest

from repro import ESSGrid
from repro.core.discovery import (
    DiscoveryResult,
    ExecutionRecord,
    normalize_location,
)


class TestNormalizeLocation:
    @pytest.fixture
    def grid(self):
        return ESSGrid(2, resolution=8, sel_min=1e-4)

    def test_flat_index(self, grid):
        coords, flat = normalize_location(grid, 13)
        assert flat == 13
        assert coords == grid.coords_of(13)

    def test_coords_tuple(self, grid):
        coords, flat = normalize_location(grid, (3, 5))
        assert coords == (3, 5)
        assert flat == grid.flat_index((3, 5))

    def test_selectivity_vector_snaps(self, grid):
        coords, flat = normalize_location(
            grid, (grid.values[0][2], grid.values[1][6])
        )
        assert coords == (2, 6)

    def test_numpy_integer_accepted(self, grid):
        import numpy as np

        coords, flat = normalize_location(grid, np.int64(7))
        assert flat == 7

    def test_mixed_float_tuple_snaps(self, grid):
        coords, _ = normalize_location(grid, (0.5, 1e-4))
        assert coords[1] == 0


class TestResultTypes:
    def test_suboptimality(self):
        result = DiscoveryResult(qa_coords=(0, 0), total_cost=30.0,
                                 optimal_cost=10.0)
        assert result.suboptimality == pytest.approx(3.0)

    def test_record_defaults(self):
        record = ExecutionRecord(
            contour=1, plan_id=0, plan_key="p", mode="spill", spill_dim=0,
            budget=10.0, charged=10.0, completed=False,
        )
        assert math.isnan(record.learned_selectivity)
        assert record.fresh
        assert record.penalty == 1.0

    def test_record_frozen(self):
        record = ExecutionRecord(
            contour=1, plan_id=0, plan_key="p", mode="normal", spill_dim=None,
            budget=1.0, charged=1.0, completed=True,
        )
        with pytest.raises(AttributeError):
            record.charged = 5.0
