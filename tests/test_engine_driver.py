"""Integration tests: engine-driven discovery and the wall-clock pieces."""

import numpy as np
import pytest

from repro import (
    ContourSet,
    DataGenerator,
    ESS,
    ESSGrid,
    ForeignKey,
    Schema,
    SpillBound,
    SPJQuery,
    Table,
    filter_pred,
    fk_column,
    join,
    key_column,
)
from repro.core.aligned_bound import AlignedBound
from repro.engine.driver import (
    EngineDiscoveryDriver,
    measured_join_selectivity,
    measured_location,
    native_run,
    oracle_run,
)


@pytest.fixture(scope="module")
def setup():
    schema = Schema("drv", tables=[
        Table("dim", 200, [key_column("d_id", 200),
                           fk_column("ignore", 10)]),
        Table("fact", 8_000, [fk_column("f_dim_id", 200, indexed=True),
                              fk_column("f_cust_id", 300, indexed=True)]),
        Table("cust", 300, [key_column("c_id", 300)]),
    ], foreign_keys=[
        ForeignKey("fact", "f_dim_id", "dim", "d_id"),
        ForeignKey("fact", "f_cust_id", "cust", "c_id"),
    ])
    query = SPJQuery("drv2d", schema, ["dim", "fact", "cust"], joins=[
        join("dim", "d_id", "fact", "f_dim_id", selectivity=5e-3,
             error_prone=True),
        join("cust", "c_id", "fact", "f_cust_id", selectivity=3e-3,
             error_prone=True),
    ])
    gen = DataGenerator(schema, seed=17)
    gen.generate_table("dim")
    gen.generate_table("cust")
    gen.generate_table("fact", fk_skew={"f_dim_id": 1.0, "f_cust_id": 0.6})
    ess = ESS.build(query, ESSGrid(2, resolution=16, sel_min=1e-4))
    contours = ContourSet(ess)
    return query, gen, ess, contours


class TestMeasurement:
    def test_measured_selectivity_definition(self, setup):
        query, gen, _, _ = setup
        sel = measured_join_selectivity(gen, query, query.joins[0])
        dim = gen.table("dim")
        fact = gen.table("fact")
        counts = np.bincount(fact.column("f_dim_id"), minlength=200)
        expected = counts[dim.column("d_id")].sum() / (200 * 8_000)
        assert sel == pytest.approx(expected)

    def test_measured_location_length(self, setup):
        query, gen, _, _ = setup
        qa = measured_location(gen, query)
        assert len(qa) == 2
        assert all(0 < s <= 1 for s in qa)

    def test_filters_shrink_measurement(self):
        schema = Schema("f", tables=[
            Table("a", 100, [key_column("a_id", 100),
                             fk_column("a_attr", 4)]),
            Table("b", 500, [fk_column("b_a_id", 100, indexed=True)]),
        ], foreign_keys=[ForeignKey("b", "b_a_id", "a", "a_id")])
        query_all = SPJQuery("qa", schema, ["a", "b"], joins=[
            join("a", "a_id", "b", "b_a_id", selectivity=0.01,
                 error_prone=True)])
        query_filtered = SPJQuery("qf", schema, ["a", "b"], joins=[
            join("a", "a_id", "b", "b_a_id", selectivity=0.01,
                 error_prone=True)],
            filters=[filter_pred("a", "a_attr", "=", 1, selectivity=0.25)])
        gen = DataGenerator(schema, seed=2)
        gen.generate_table("a")
        gen.generate_table("b")
        sel_all = measured_join_selectivity(gen, query_all,
                                            query_all.joins[0])
        sel_f = measured_join_selectivity(gen, query_filtered,
                                          query_filtered.joins[0])
        assert sel_all > 0
        assert sel_f != sel_all  # the filtered denominator differs


class TestEngineDiscovery:
    def test_sb_driver_completes_with_correct_results(self, setup):
        query, gen, ess, contours = setup
        qa = measured_location(gen, query)
        oracle = oracle_run(ess, gen, qa)
        report = EngineDiscoveryDriver(SpillBound(ess, contours), gen).run()
        assert report.rows_out == oracle.rows_out
        assert report.completed_plan_key

    def test_ab_driver_completes_with_correct_results(self, setup):
        query, gen, ess, contours = setup
        qa = measured_location(gen, query)
        oracle = oracle_run(ess, gen, qa)
        report = EngineDiscoveryDriver(AlignedBound(ess, contours), gen).run()
        assert report.rows_out == oracle.rows_out

    def test_killed_steps_cost_their_budget(self, setup):
        query, gen, ess, contours = setup
        report = EngineDiscoveryDriver(SpillBound(ess, contours), gen).run()
        for step in report.steps:
            if not step.completed:
                assert step.cost_spent == pytest.approx(step.budget)
            else:
                assert step.cost_spent <= step.budget * (1 + 1e-9)

    def test_total_is_sum_of_steps(self, setup):
        query, gen, ess, contours = setup
        report = EngineDiscoveryDriver(SpillBound(ess, contours), gen).run()
        assert report.total_cost == pytest.approx(
            sum(s.cost_spent for s in report.steps)
        )

    def test_engine_subopt_close_to_simulation(self, setup):
        """The engine-driven run should land near the cost-model
        simulation (same contours, same plans, measured cardinalities)."""
        query, gen, ess, contours = setup
        qa = measured_location(gen, query)
        oracle = oracle_run(ess, gen, qa)
        sim = SpillBound(ess, contours).run(ess.grid.snap(qa))
        report = EngineDiscoveryDriver(SpillBound(ess, contours), gen).run()
        engine_subopt = report.total_cost / oracle.cost_spent
        assert engine_subopt == pytest.approx(sim.suboptimality, rel=0.75)

    def test_native_and_oracle_agree_on_rows(self, setup):
        query, gen, ess, _ = setup
        qa = measured_location(gen, query)
        oracle = oracle_run(ess, gen, qa)
        native = native_run(ess, gen)
        assert oracle.rows_out == native.rows_out
        assert native.cost_spent >= oracle.cost_spent * 0.99


class TestWallclockHarness:
    def test_run_wallclock_shape(self):
        from repro.bench.harness import run_wallclock

        result = run_wallclock(row_budget=6_000, seed=4)
        assert result["rows_match"]
        assert result["native_subopt"] >= 1.0 - 1e-6
        assert result["sb_subopt"] >= 1.0 - 1e-6
        assert result["sb_steps"] >= 1
