"""Unit tests for budgeted execution, spill surgery, and monitoring."""

import pytest

from repro import BudgetExhausted, DataGenerator, execute_plan
from repro.engine.executor import CostMeter
from repro.engine.spill import spill_root_key
from repro.errors import ExecutionError
from repro.optimizer.optimizer import Optimizer
from tests.test_engine_iterators import mini_schema

from repro import SPJQuery, filter_pred, join


@pytest.fixture(scope="module")
def setup():
    schema = mini_schema()
    query = SPJQuery("mini", schema, ["dim", "fact"], joins=[
        join("dim", "d_id", "fact", "f_dim_id", selectivity=1 / 40,
             error_prone=True),
    ], filters=[filter_pred("dim", "d_attr", "=", 2, selectivity=0.25)])
    gen = DataGenerator(schema, seed=5)
    gen.generate_table("dim")
    gen.generate_table("fact", fk_skew={"f_dim_id": 0.5})
    plan, cost = Optimizer(query).optimize_at((1 / 40,))
    return query, gen, plan, cost


class TestCostMeter:
    def test_unbounded_never_raises(self):
        meter = CostMeter()
        meter.charge(1e12)
        assert meter.spent == 1e12

    def test_budget_enforced(self):
        meter = CostMeter(budget=10.0)
        meter.charge(9.0)
        with pytest.raises(BudgetExhausted):
            meter.charge(2.0)
        # A killed execution costs exactly its budget.
        assert meter.spent == pytest.approx(10.0)

    def test_exception_carries_amounts(self):
        meter = CostMeter(budget=5.0)
        with pytest.raises(BudgetExhausted) as info:
            meter.charge(7.0)
        assert info.value.budget == 5.0
        assert info.value.spent == pytest.approx(7.0)


class TestExecutePlan:
    def test_unbudgeted_run_completes(self, setup):
        query, gen, plan, _ = setup
        outcome = execute_plan(plan, query, gen, query_cost_model(setup))
        assert outcome.completed
        assert outcome.rows_out > 0
        assert outcome.cost_spent > 0

    def test_budget_kills_run(self, setup):
        query, gen, plan, _ = setup
        outcome = execute_plan(plan, query, gen, query_cost_model(setup),
                               budget=50.0)
        assert not outcome.completed
        assert outcome.cost_spent == pytest.approx(50.0)

    def test_generous_budget_completes(self, setup):
        query, gen, plan, _ = setup
        free = execute_plan(plan, query, gen, query_cost_model(setup))
        outcome = execute_plan(plan, query, gen, query_cost_model(setup),
                               budget=free.cost_spent * 1.01)
        assert outcome.completed
        assert outcome.rows_out == free.rows_out

    def test_cost_deterministic(self, setup):
        query, gen, plan, _ = setup
        a = execute_plan(plan, query, gen, query_cost_model(setup))
        b = execute_plan(plan, query, gen, query_cost_model(setup))
        assert a.cost_spent == pytest.approx(b.cost_spent)

    def test_stats_for_every_node(self, setup):
        query, gen, plan, _ = setup
        outcome = execute_plan(plan, query, gen, query_cost_model(setup))
        keys = {node.key for node in plan.iter_nodes()}
        # INL inner scans are accessed through their index and get no
        # operator of their own.
        assert set(outcome.stats) <= keys
        assert plan.key in outcome.stats


class TestSpillMode:
    def test_spill_runs_only_subtree(self, setup):
        query, gen, plan, _ = setup
        epp = query.epps[0].name
        outcome = execute_plan(plan, query, gen, query_cost_model(setup),
                               spill_epp=epp)
        assert outcome.completed
        assert outcome.spilled_epp == epp

    def test_spill_learns_exact_selectivity(self, setup):
        query, gen, plan, _ = setup
        epp = query.epps[0].name
        outcome = execute_plan(plan, query, gen, query_cost_model(setup),
                               spill_epp=epp)
        root_key = spill_root_key(plan, epp)
        observed = outcome.selectivity_of(root_key)
        # Reference: measured true selectivity over the generated data.
        from repro import measured_location

        truth = measured_location(gen, query)[0]
        assert observed == pytest.approx(truth, rel=1e-9)

    def test_spill_cost_not_more_than_full(self, setup):
        query, gen, plan, _ = setup
        epp = query.epps[0].name
        spill = execute_plan(plan, query, gen, query_cost_model(setup),
                             spill_epp=epp)
        full = execute_plan(plan, query, gen, query_cost_model(setup))
        assert spill.cost_spent <= full.cost_spent * (1 + 1e-9)

    def test_unknown_spill_epp_rejected(self, setup):
        query, gen, plan, _ = setup
        with pytest.raises(ExecutionError):
            execute_plan(plan, query, gen, query_cost_model(setup),
                         spill_epp="j:ghost")

    def test_budgeted_spill_kill(self, setup):
        query, gen, plan, _ = setup
        epp = query.epps[0].name
        outcome = execute_plan(plan, query, gen, query_cost_model(setup),
                               budget=30.0, spill_epp=epp)
        assert not outcome.completed
        assert outcome.cost_spent == pytest.approx(30.0)


def query_cost_model(setup):
    from repro import DEFAULT_COST_MODEL

    return DEFAULT_COST_MODEL
