"""Unit tests for the iterator operators against brute-force references."""

import numpy as np
import pytest

from repro import (
    Column,
    DataGenerator,
    ForeignKey,
    Schema,
    SPJQuery,
    Table,
    filter_pred,
    fk_column,
    join,
    key_column,
)
from repro.engine.executor import CostMeter, OperatorStats
from repro.engine.iterators import (
    HashJoin,
    IndexNLJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
)
from repro.errors import ExecutionError
from repro.optimizer.cost_model import DEFAULT_COST_MODEL


def mini_schema():
    return Schema("mini", tables=[
        Table("dim", 40, [key_column("d_id", 40), Column("d_attr", ndv=4)]),
        Table("fact", 400, [fk_column("f_dim_id", 40, indexed=True),
                            Column("f_val", ndv=10)]),
    ], foreign_keys=[ForeignKey("fact", "f_dim_id", "dim", "d_id")])


@pytest.fixture(scope="module")
def data():
    gen = DataGenerator(mini_schema(), seed=5)
    gen.generate_table("dim")
    gen.generate_table("fact", fk_skew={"f_dim_id": 0.5})
    return gen


@pytest.fixture(scope="module")
def query():
    return SPJQuery("mini", mini_schema(), ["dim", "fact"], joins=[
        join("dim", "d_id", "fact", "f_dim_id", selectivity=1 / 40,
             error_prone=True),
    ], filters=[filter_pred("dim", "d_attr", "=", 2, selectivity=0.25)])


def scan(table, data, filters, model=DEFAULT_COST_MODEL, meter=None):
    return SeqScan(table, data.table(table), tuple(filters), model,
                   OperatorStats(node_key=f"scan({table})"),
                   meter or CostMeter())


def brute_force_join(data, query):
    """Reference implementation: filtered hash join in plain numpy."""
    dim = data.table("dim")
    fact = data.table("fact")
    mask = dim.column("d_attr") == 2
    dim_ids = dim.column("d_id")[mask]
    matches = np.isin(fact.column("f_dim_id"), dim_ids)
    counts = dict(zip(*np.unique(fact.column("f_dim_id")[matches],
                                 return_counts=True)))
    return sum(counts.get(i, 0) for i in dim_ids)


class TestScans:
    def test_seq_scan_filters(self, data, query):
        rows = list(scan("dim", data, query.filters_on("dim")).rows())
        expected = int(np.sum(data.table("dim").column("d_attr") == 2))
        assert len(rows) == expected

    def test_seq_scan_columns_layout(self, data, query):
        operator = scan("dim", data, ())
        assert operator.columns == (("dim", "d_id"), ("dim", "d_attr"))

    def test_index_scan_equals_seq_scan(self, data, query):
        meter = CostMeter()
        idx = IndexScan("dim", data.table("dim"),
                        tuple(query.filters_on("dim")), DEFAULT_COST_MODEL,
                        OperatorStats(node_key="idx"), meter)
        seq_rows = sorted(scan("dim", data, query.filters_on("dim")).rows())
        assert sorted(idx.rows()) == seq_rows

    def test_index_scan_cheaper_for_selective_filter(self, data, query):
        meter_idx = CostMeter()
        IndexScan("dim", data.table("dim"), tuple(query.filters_on("dim")),
                  DEFAULT_COST_MODEL, OperatorStats(node_key="i"),
                  meter_idx).rows().__iter__()
        idx = IndexScan("dim", data.table("dim"),
                        tuple(query.filters_on("dim")), DEFAULT_COST_MODEL,
                        OperatorStats(node_key="i"), meter_idx)
        list(idx.rows())
        meter_seq = CostMeter()
        list(scan("dim", data, query.filters_on("dim"),
                  meter=meter_seq).rows())
        assert meter_idx.spent < meter_seq.spent

    def test_scan_stats(self, data, query):
        operator = scan("dim", data, query.filters_on("dim"))
        rows = list(operator.rows())
        assert operator.stats.rows_outer == 40
        assert operator.stats.rows_out == len(rows)


class TestJoins:
    def _key_pairs(self):
        return ([("dim", "d_id")], [("fact", "f_dim_id")])

    def _join_rows(self, cls, data, query, swap=False):
        outer = scan("dim", data, query.filters_on("dim"))
        inner = scan("fact", data, ())
        if swap:
            outer, inner = inner, outer
            keys = ([("fact", "f_dim_id")], [("dim", "d_id")])
        else:
            keys = self._key_pairs()
        operator = cls(outer, inner, keys, DEFAULT_COST_MODEL,
                       OperatorStats(node_key="j"), CostMeter())
        return list(operator.rows()), operator

    def test_hash_join_count_matches_brute_force(self, data, query):
        rows, _ = self._join_rows(HashJoin, data, query)
        assert len(rows) == brute_force_join(data, query)

    def test_merge_join_count_matches(self, data, query):
        rows, _ = self._join_rows(MergeJoin, data, query)
        assert len(rows) == brute_force_join(data, query)

    def test_nl_join_count_matches(self, data, query):
        rows, _ = self._join_rows(NestedLoopJoin, data, query)
        assert len(rows) == brute_force_join(data, query)

    def test_join_orientation_symmetric_counts(self, data, query):
        a, _ = self._join_rows(HashJoin, data, query)
        b, _ = self._join_rows(HashJoin, data, query, swap=True)
        assert len(a) == len(b)

    def test_join_row_width(self, data, query):
        rows, operator = self._join_rows(HashJoin, data, query)
        assert len(operator.columns) == 4
        assert all(len(r) == 4 for r in rows)

    def test_hash_and_merge_same_multiset(self, data, query):
        hash_rows, _ = self._join_rows(HashJoin, data, query)
        merge_rows, _ = self._join_rows(MergeJoin, data, query)
        assert sorted(hash_rows) == sorted(merge_rows)

    def test_observed_selectivity_exact(self, data, query):
        rows, operator = self._join_rows(HashJoin, data, query)
        stats = operator.stats
        expected = len(rows) / (stats.rows_outer * stats.rows_inner)
        assert stats.observed_selectivity == pytest.approx(expected)

    def test_column_resolution_error(self, data, query):
        outer = scan("dim", data, ())
        with pytest.raises(ExecutionError):
            outer.column_index("dim", "missing")


class TestIndexNLJoin:
    def test_count_matches_brute_force(self, data, query):
        outer = scan("fact", data, ())
        operator = IndexNLJoin(
            outer=outer,
            inner_table="dim",
            table_data=data.table("dim"),
            join_columns=([("fact", "f_dim_id")], "d_id"),
            inner_filters=query.filters_on("dim"),
            model=DEFAULT_COST_MODEL,
            stats=OperatorStats(node_key="inl"),
            meter=CostMeter(),
        )
        rows = list(operator.rows())
        assert len(rows) == brute_force_join(data, query)

    def test_selectivity_denominator_uses_filtered_inner(self, data, query):
        outer = scan("fact", data, ())
        operator = IndexNLJoin(
            outer=outer, inner_table="dim", table_data=data.table("dim"),
            join_columns=([("fact", "f_dim_id")], "d_id"),
            inner_filters=query.filters_on("dim"),
            model=DEFAULT_COST_MODEL,
            stats=OperatorStats(node_key="inl"), meter=CostMeter(),
        )
        rows = list(operator.rows())
        stats = operator.stats
        filtered_dim = int(np.sum(data.table("dim").column("d_attr") == 2))
        assert stats.rows_inner == filtered_dim
        assert stats.observed_selectivity == pytest.approx(
            len(rows) / (400 * filtered_dim)
        )
