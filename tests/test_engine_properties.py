"""Property-based tests for engine operators against brute force.

Random tiny tables, random join keys: every join operator must produce
exactly the brute-force result multiset, and monitors must report exact
counts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Column, Schema, Table, fk_column, key_column
from repro.catalog.datagen import TableData
from repro.engine.executor import CostMeter, OperatorStats
from repro.engine.iterators import (
    HashJoin,
    IndexNLJoin,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
)
from repro.optimizer.cost_model import DEFAULT_COST_MODEL

SETTINGS = dict(deadline=None, max_examples=30,
                suppress_health_check=[HealthCheck.too_slow])

key_lists = st.lists(st.integers(0, 8), min_size=1, max_size=40)


def make_tables(left_keys, right_keys):
    left = TableData("l", {"lk": np.array(left_keys, dtype=np.int64)})
    right = TableData("r", {"rk": np.array(right_keys, dtype=np.int64)})
    return left, right


def scan(name, data, key_col):
    return SeqScan(name, data, (), DEFAULT_COST_MODEL,
                   OperatorStats(node_key=name), CostMeter())


def brute_force(left_keys, right_keys):
    pairs = []
    for lv in left_keys:
        for rv in right_keys:
            if lv == rv:
                pairs.append((lv, rv))
    return sorted(pairs)


def run_join(cls, left_keys, right_keys):
    left, right = make_tables(left_keys, right_keys)
    operator = cls(
        scan("l", left, "lk"), scan("r", right, "rk"),
        ([("l", "lk")], [("r", "rk")]),
        DEFAULT_COST_MODEL, OperatorStats(node_key="j"), CostMeter(),
    )
    return sorted((row[0], row[1]) for row in operator.rows()), operator


@given(left=key_lists, right=key_lists)
@settings(**SETTINGS)
def test_hash_join_matches_brute_force(left, right):
    rows, _ = run_join(HashJoin, left, right)
    assert rows == brute_force(left, right)


@given(left=key_lists, right=key_lists)
@settings(**SETTINGS)
def test_merge_join_matches_brute_force(left, right):
    rows, _ = run_join(MergeJoin, left, right)
    assert rows == brute_force(left, right)


@given(left=key_lists, right=key_lists)
@settings(**SETTINGS)
def test_nl_join_matches_brute_force(left, right):
    rows, _ = run_join(NestedLoopJoin, left, right)
    assert rows == brute_force(left, right)


@given(left=key_lists, right=key_lists)
@settings(**SETTINGS)
def test_index_nl_join_matches_brute_force(left, right):
    left_data, right_data = make_tables(left, right)
    operator = IndexNLJoin(
        outer=scan("l", left_data, "lk"),
        inner_table="r",
        table_data=right_data,
        join_columns=([("l", "lk")], "rk"),
        inner_filters=(),
        model=DEFAULT_COST_MODEL,
        stats=OperatorStats(node_key="inl"),
        meter=CostMeter(),
    )
    rows = sorted((row[0], row[1]) for row in operator.rows())
    assert rows == brute_force(left, right)


@given(left=key_lists, right=key_lists)
@settings(**SETTINGS)
def test_operators_agree_pairwise(left, right):
    reference, _ = run_join(HashJoin, left, right)
    for cls in (MergeJoin, NestedLoopJoin):
        rows, _ = run_join(cls, left, right)
        assert rows == reference


@given(left=key_lists, right=key_lists)
@settings(**SETTINGS)
def test_monitor_counts_exact(left, right):
    rows, operator = run_join(HashJoin, left, right)
    assert operator.stats.rows_outer == len(left)
    assert operator.stats.rows_inner == len(right)
    assert operator.stats.rows_out == len(rows)
    expected_sel = len(rows) / (len(left) * len(right))
    assert operator.stats.observed_selectivity == pytest.approx(expected_sel)


@given(left=key_lists, right=key_lists, budget=st.floats(1.0, 500.0))
@settings(**SETTINGS)
def test_budget_abort_never_overcharges(left, right, budget):
    from repro.errors import BudgetExhausted

    left_data, right_data = make_tables(left, right)
    meter = CostMeter(budget)
    operator = HashJoin(
        SeqScan("l", left_data, (), DEFAULT_COST_MODEL,
                OperatorStats(node_key="l"), meter),
        SeqScan("r", right_data, (), DEFAULT_COST_MODEL,
                OperatorStats(node_key="r"), meter),
        ([("l", "lk")], [("r", "rk")]),
        DEFAULT_COST_MODEL, OperatorStats(node_key="j"), meter,
    )
    try:
        for _ in operator.rows():
            pass
    except BudgetExhausted:
        pass
    assert meter.spent <= budget + 1e-9
