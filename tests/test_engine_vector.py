"""The vector engine's charge-equivalence contract, at its edges.

The columnar engine (:mod:`repro.engine.vector`) promises an
:class:`~repro.engine.executor.ExecutionOutcome` identical to the
Volcano interpreter's for any plan, budget, and spill mode.  These tests
target the places where that promise is hardest to keep: budgets landing
exactly on a charge boundary (the meter's strict ``>``), kills inside
MergeJoin's lump sort/merge charges vs inside its output loop, killed
spill-mode runs, and the fallback path when the engine declines an
execution.
"""

import numpy as np
import pytest

from repro import (
    DataGenerator,
    ESS,
    ESSGrid,
    ForeignKey,
    Schema,
    SPJQuery,
    Table,
    execute_plan,
    filter_pred,
    fk_column,
    join,
    key_column,
)
from repro.engine import vector
from repro.engine.spill import ENGINES, resolve_engine
from repro.errors import ExecutionError
from repro.optimizer import plans as planlib


@pytest.fixture(scope="module")
def setup():
    schema = Schema("vecdiff", tables=[
        Table("a", 90, [key_column("a_id", 90), fk_column("a_x", 6)]),
        Table("f", 1_500, [fk_column("f_a_id", 90, indexed=True),
                           fk_column("f_b_id", 60, indexed=True)]),
        Table("b", 60, [key_column("b_id", 60), fk_column("b_y", 5)]),
    ], foreign_keys=[
        ForeignKey("f", "f_a_id", "a", "a_id"),
        ForeignKey("f", "f_b_id", "b", "b_id"),
    ])
    query = SPJQuery("vecdiff2d", schema, ["a", "f", "b"], joins=[
        join("a", "a_id", "f", "f_a_id", selectivity=1 / 90,
             error_prone=True),
        join("b", "b_id", "f", "f_b_id", selectivity=1 / 60,
             error_prone=True),
    ], filters=[
        filter_pred("a", "a_x", "=", 2, selectivity=1 / 6),
        filter_pred("b", "b_y", "=", 1, selectivity=1 / 5),
    ])
    gen = DataGenerator(schema, seed=31)
    gen.generate_table("a")
    gen.generate_table("b")
    gen.generate_table("f", fk_skew={"f_a_id": 0.8})
    ess = ESS.build(query, ESSGrid(2, resolution=8, sel_min=1e-4))
    return query, gen, ess


def both(plan, query, gen, model, **kwargs):
    v = execute_plan(plan, query, gen, model, engine="volcano", **kwargs)
    w = execute_plan(plan, query, gen, model, engine="vector", **kwargs)
    return v, w


def assert_identical(v, w):
    assert v.completed == w.completed
    assert v.rows_out == w.rows_out
    # repr catches last-bit drift that a tolerance would forgive.
    assert repr(v.cost_spent) == repr(w.cost_spent)
    assert v.spilled_epp == w.spilled_epp
    assert set(v.stats) == set(w.stats)
    for key in v.stats:
        a, b = v.stats[key], w.stats[key]
        assert (a.rows_outer, a.rows_inner, a.rows_out) == \
            (b.rows_outer, b.rows_inner, b.rows_out), key


def charge_prefix_sums(plan, query, gen, model):
    """The meter's exact running totals, one per ``charge()`` call."""
    ctx = vector._BuildContext(None)
    stream = vector._build_stream(plan, query, gen, model, ctx, [])
    assert not stream.truncated
    return np.cumsum(stream.charges)


def merge_join_plan(query):
    ja, jb = query.epps
    low = planlib.JoinNode(
        planlib.MERGE_JOIN,
        planlib.ScanNode("f", planlib.SEQ_SCAN),
        planlib.ScanNode("a", planlib.SEQ_SCAN),
        (ja,),
    )
    return planlib.JoinNode(
        planlib.MERGE_JOIN, low,
        planlib.ScanNode("b", planlib.SEQ_SCAN), (jb,),
    )


class TestEngineSelector:
    def test_explicit_engines_resolve_to_themselves(self):
        assert resolve_engine("vector") == "vector"
        assert resolve_engine("volcano") == "volcano"

    def test_auto_defaults_to_vector(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine("auto") == "vector"
        assert resolve_engine(None) == "vector"

    def test_auto_honors_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "volcano")
        assert resolve_engine("auto") == "volcano"

    def test_stale_environment_value_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
        assert resolve_engine("auto") == "vector"

    def test_unknown_argument_is_an_error(self):
        with pytest.raises(ExecutionError):
            resolve_engine("warp-drive")

    def test_engines_tuple(self):
        assert ENGINES == ("auto", "vector", "volcano")


class TestBudgetBoundaries:
    def test_budget_exactly_on_charge_boundary(self, setup):
        """The meter kills on strict ``>``: a budget equal to a prefix
        sum survives that charge and dies on the next one.  Both engines
        must agree at the boundary and one ulp below it."""
        query, gen, ess = setup
        plan = ess.plans[0]
        prefix = charge_prefix_sums(plan, query, gen, ess.cost_model)
        picks = [0, 1, len(prefix) // 3, len(prefix) // 2, len(prefix) - 2]
        for i in picks:
            boundary = float(prefix[i])
            for budget in (boundary, np.nextafter(boundary, -np.inf)):
                v, w = both(plan, query, gen, ess.cost_model, budget=budget)
                assert not v.completed
                assert_identical(v, w)

    def test_budget_equal_to_total_completes(self, setup):
        query, gen, ess = setup
        plan = ess.plans[0]
        prefix = charge_prefix_sums(plan, query, gen, ess.cost_model)
        v, w = both(plan, query, gen, ess.cost_model,
                    budget=float(prefix[-1]))
        assert v.completed and w.completed
        assert_identical(v, w)

    def test_kill_inside_merge_sort_charge_vs_merge_loop(self, setup):
        """MergeJoin charges sorting as one lump per side and merging as
        one lump, then per-row output charges; a kill landing *inside* a
        lump and one landing in the output loop truncate differently and
        both must match the interpreter."""
        query, gen, ess = setup
        model = ess.cost_model
        plan = merge_join_plan(query)
        ctx = vector._BuildContext(None)
        stream = vector._build_stream(plan, query, gen, model, ctx, [])
        prefix = np.cumsum(stream.charges)
        # Lump charges are the ones much larger than any per-row charge.
        lumps = np.flatnonzero(stream.charges > 4 * model.startup)
        assert lumps.size >= 3, "expected sort/sort/merge lump charges"
        for lump in lumps[:3]:
            mid = float(prefix[lump]) - 0.5 * float(stream.charges[lump])
            v, w = both(plan, query, gen, model, budget=mid)
            assert not v.completed
            assert_identical(v, w)
        # Inside the output loop: past every lump, short of completion.
        loop_budget = float(prefix[-1]) - 2 * model.output_tuple
        v, w = both(plan, query, gen, model, budget=loop_budget)
        assert not v.completed
        assert_identical(v, w)

    def test_spill_mode_kills_identical(self, setup):
        query, gen, ess = setup
        plan = ess.plans[0]
        for epp in query.epps:
            full = execute_plan(plan, query, gen, ess.cost_model,
                                spill_epp=epp.name, engine="volcano")
            assert full.completed
            rng = np.random.default_rng(17)
            for budget in rng.uniform(5.0, full.cost_spent,
                                      size=8).tolist():
                v, w = both(plan, query, gen, ess.cost_model,
                            budget=budget, spill_epp=epp.name)
                assert_identical(v, w)

    def test_all_posp_plans_unbudgeted_identical(self, setup):
        query, gen, ess = setup
        for plan in ess.plans:
            v, w = both(plan, query, gen, ess.cost_model)
            assert v.completed
            assert_identical(v, w)


class TestFallback:
    def test_max_charges_ceiling_falls_back_to_volcano(self, setup,
                                                       monkeypatch):
        """When the stream would exceed the charge ceiling the selector
        silently reruns on Volcano — callers still get the exact
        outcome."""
        query, gen, ess = setup
        plan = ess.plans[0]
        reference = execute_plan(plan, query, gen, ess.cost_model,
                                 engine="volcano")
        monkeypatch.setattr(vector, "MAX_CHARGES", 16)
        with pytest.raises(vector.VectorFallback):
            vector.execute_vectorized(plan, query, gen, ess.cost_model)
        outcome = execute_plan(plan, query, gen, ess.cost_model,
                               engine="vector")
        assert_identical(reference, outcome)

    def test_vectorized_outcome_counts_every_operator(self, setup):
        query, gen, ess = setup
        plan = ess.plans[0]
        outcome = execute_plan(plan, query, gen, ess.cost_model,
                               engine="vector")
        keys = set()

        def walk(node):
            keys.add(node.key)
            if isinstance(node, planlib.JoinNode):
                walk(node.outer)
                if node.op != planlib.INDEX_NL_JOIN:
                    walk(node.inner)

        walk(plan)
        assert keys == set(outcome.stats)
