"""End-to-end fuzzing: random workloads through the whole pipeline.

The structural guarantee is supposed to hold for *any* query; these
tests generate random schemas/queries/epp-markings and validate every
invariant on the resulting ESS, contours, and discovery runs.
"""

import numpy as np
import pytest

from repro import (
    AlignedBound,
    ContourSet,
    ESS,
    ESSGrid,
    PlanBouquet,
    SpillBound,
)
from repro.bench.randgen import random_workload
from repro.core.validate import (
    ValidationError,
    validate_contours,
    validate_discovery_result,
    validate_ess,
)

SEEDS = [1, 2, 3, 5, 8, 13, 21, 34]


def build_small(seed):
    query = random_workload(seed)
    resolution = {2: 9, 3: 6, 4: 5}.get(query.num_epps, 4)
    sel_min = [min(1e-5, p.selectivity / 2) for p in query.epps]
    grid = ESSGrid(query.num_epps, resolution=resolution, sel_min=sel_min)
    ess = ESS.build(query, grid)
    return query, ess, ContourSet(ess)


class TestRandomWorkloads:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generation_is_valid_and_deterministic(self, seed):
        a = random_workload(seed)
        b = random_workload(seed)
        assert a.describe() == b.describe()
        assert a.join_graph.is_connected()
        assert not a.join_graph.has_cycle()
        assert 2 <= a.num_epps <= 3

    def test_different_seeds_differ(self):
        assert random_workload(1).describe() != random_workload(2).describe()


class TestPipelineInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ess_and_contours_valid(self, seed):
        _, ess, contours = build_small(seed)
        validate_ess(ess)
        validate_contours(contours)

    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_guarantees_hold_on_random_workloads(self, seed):
        _, ess, contours = build_small(seed)
        algorithms = [
            PlanBouquet(ess, contours),
            SpillBound(ess, contours),
            AlignedBound(ess, contours),
        ]
        rng = np.random.default_rng(seed)
        points = rng.choice(ess.grid.num_points,
                            size=min(24, ess.grid.num_points),
                            replace=False)
        for algorithm in algorithms:
            for flat in points:
                result = algorithm.run(int(flat), trace=True)
                validate_discovery_result(result, algorithm)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_sb_beats_its_guarantee_comfortably(self, seed):
        """Empirically the structural bound is loose, not tight."""
        from repro import evaluate_algorithm

        _, ess, contours = build_small(seed)
        sb = SpillBound(ess, contours)
        evaluation = evaluate_algorithm(sb)
        assert evaluation.mso <= sb.mso_guarantee() * (1 + 1e-9)


class TestValidators:
    def test_validate_ess_summary(self, toy_ess):
        summary = validate_ess(toy_ess)
        assert summary["posp_size"] == toy_ess.posp_size

    def test_validate_contours_summary(self, toy_contours):
        summary = validate_contours(toy_contours)
        assert summary["num_contours"] == toy_contours.num_contours

    def test_validator_catches_corruption(self, toy_ess):
        import copy

        broken = copy.copy(toy_ess)
        broken.optimal_cost = toy_ess.optimal_cost.copy()
        broken.optimal_cost[5] = broken.optimal_cost.max() * 2
        with pytest.raises(ValidationError):
            validate_ess(broken)

    def test_validator_catches_bad_result(self, toy_sb):
        result = toy_sb.run(100)
        result.total_cost = result.optimal_cost * 1e6
        with pytest.raises(ValidationError):
            validate_discovery_result(result, toy_sb)

    def test_validator_accepts_good_result(self, toy_sb):
        result = toy_sb.run(100, trace=True)
        summary = validate_discovery_result(result, toy_sb)
        assert summary["guarantee"] == toy_sb.mso_guarantee()
