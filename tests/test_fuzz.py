"""End-to-end fuzzing: random workloads through the whole pipeline.

The structural guarantee is supposed to hold for *any* query; these
tests generate random schemas/queries/epp-markings and validate every
invariant on the resulting ESS, contours, and discovery runs.
"""

import numpy as np
import pytest

from repro import (
    AlignedBound,
    ContourSet,
    ESS,
    ESSGrid,
    PlanBouquet,
    SpillBound,
)
from repro.bench.randgen import random_workload
from repro.core.validate import (
    ValidationError,
    validate_contours,
    validate_discovery_result,
    validate_ess,
)
from tests.conftest import fuzz_seeds

SEEDS = fuzz_seeds([1, 2, 3, 5, 8, 13, 21, 34])


def build_small(seed):
    query = random_workload(seed)
    resolution = {2: 9, 3: 6, 4: 5}.get(query.num_epps, 4)
    sel_min = [min(1e-5, p.selectivity / 2) for p in query.epps]
    grid = ESSGrid(query.num_epps, resolution=resolution, sel_min=sel_min)
    ess = ESS.build(query, grid)
    return query, ess, ContourSet(ess)


class TestRandomWorkloads:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generation_is_valid_and_deterministic(self, seed):
        a = random_workload(seed)
        b = random_workload(seed)
        assert a.describe() == b.describe()
        assert a.join_graph.is_connected()
        assert not a.join_graph.has_cycle()
        assert 2 <= a.num_epps <= 3

    def test_different_seeds_differ(self):
        assert random_workload(1).describe() != random_workload(2).describe()


class TestPipelineInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ess_and_contours_valid(self, seed):
        _, ess, contours = build_small(seed)
        validate_ess(ess)
        validate_contours(contours)

    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_guarantees_hold_on_random_workloads(self, seed):
        _, ess, contours = build_small(seed)
        algorithms = [
            PlanBouquet(ess, contours),
            SpillBound(ess, contours),
            AlignedBound(ess, contours),
        ]
        rng = np.random.default_rng(seed)
        points = rng.choice(ess.grid.num_points,
                            size=min(24, ess.grid.num_points),
                            replace=False)
        for algorithm in algorithms:
            for flat in points:
                result = algorithm.run(int(flat), trace=True)
                validate_discovery_result(result, algorithm)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_sb_beats_its_guarantee_comfortably(self, seed):
        """Empirically the structural bound is loose, not tight."""
        from repro import evaluate_algorithm

        _, ess, contours = build_small(seed)
        sb = SpillBound(ess, contours)
        evaluation = evaluate_algorithm(sb)
        assert evaluation.mso <= sb.mso_guarantee() * (1 + 1e-9)


class TestValidators:
    def test_validate_ess_summary(self, toy_ess):
        summary = validate_ess(toy_ess)
        assert summary["posp_size"] == toy_ess.posp_size

    def test_validate_contours_summary(self, toy_contours):
        summary = validate_contours(toy_contours)
        assert summary["num_contours"] == toy_contours.num_contours

    def test_validator_catches_corruption(self, toy_ess):
        import copy

        broken = copy.copy(toy_ess)
        broken.optimal_cost = toy_ess.optimal_cost.copy()
        broken.optimal_cost[5] = broken.optimal_cost.max() * 2
        with pytest.raises(ValidationError):
            validate_ess(broken)

    def test_validator_catches_bad_result(self, toy_sb):
        result = toy_sb.run(100)
        result.total_cost = result.optimal_cost * 1e6
        with pytest.raises(ValidationError):
            validate_discovery_result(result, toy_sb)

    def test_validator_accepts_good_result(self, toy_sb):
        result = toy_sb.run(100, trace=True)
        summary = validate_discovery_result(result, toy_sb)
        assert summary["guarantee"] == toy_sb.mso_guarantee()


# ----------------------------------------------------------------------
# Volcano vs vector engine: randomized differential fuzzing
# ----------------------------------------------------------------------

_ENGINE_SEEDS = fuzz_seeds([3, 11, 42])
_ENGINE_INSTANCES = {}


def _engine_instance(seed):
    """A small star-schema instance for engine fuzzing, cached per seed."""
    if seed in _ENGINE_INSTANCES:
        return _ENGINE_INSTANCES[seed]
    from repro import (
        DataGenerator,
        ForeignKey,
        Schema,
        SPJQuery,
        Table,
        filter_pred,
        fk_column,
        join,
        key_column,
    )
    from repro.optimizer.cost_model import DEFAULT_COST_MODEL

    schema = Schema("fuzzvec", tables=[
        Table("a", 70, [key_column("a_id", 70), fk_column("a_x", 6)]),
        Table("f", 1_200, [fk_column("f_a_id", 70, indexed=True),
                           fk_column("f_b_id", 50, indexed=True)]),
        Table("b", 50, [key_column("b_id", 50), fk_column("b_y", 4)]),
    ], foreign_keys=[
        ForeignKey("f", "f_a_id", "a", "a_id"),
        ForeignKey("f", "f_b_id", "b", "b_id"),
    ])
    query = SPJQuery("fuzzvec2d", schema, ["a", "f", "b"], joins=[
        join("a", "a_id", "f", "f_a_id", selectivity=1 / 70,
             error_prone=True),
        join("b", "b_id", "f", "f_b_id", selectivity=1 / 50,
             error_prone=True),
    ], filters=[
        filter_pred("a", "a_x", "=", 1, selectivity=1 / 6),
        filter_pred("b", "b_y", "=", 2, selectivity=1 / 4),
    ])
    gen = DataGenerator(schema, seed=seed)
    gen.generate_table("a")
    gen.generate_table("b")
    gen.generate_table("f", fk_skew={"f_a_id": 0.5 + 0.1 * (seed % 5)})
    _ENGINE_INSTANCES[seed] = (query, gen, DEFAULT_COST_MODEL)
    return _ENGINE_INSTANCES[seed]


def _random_plan(query, rng):
    """A random bushy two-join plan over the star schema.

    Scan methods, join operators, join order, and orientations are all
    drawn at random; INL is only legal when its inner side is a
    single-table scan carrying exactly one join predicate, so when it is
    drawn elsewhere it degrades to NL.
    """
    from repro.optimizer import plans as planlib

    ja, jb = query.epps
    ops = (planlib.HASH_JOIN, planlib.MERGE_JOIN, planlib.NL_JOIN,
           planlib.INDEX_NL_JOIN)
    methods = (planlib.SEQ_SCAN, planlib.INDEX_SCAN)
    scans = {t: planlib.ScanNode(t, methods[rng.integers(2)],
                                 tuple(query.filters_on(t)))
             for t in ("a", "f", "b")}
    first_dim, second_dim = (("a", ja), ("b", jb)) if rng.integers(2) \
        else (("b", jb), ("a", ja))

    def build_join(op, left, right, pred):
        if op == planlib.INDEX_NL_JOIN:
            if isinstance(right, planlib.ScanNode):
                return planlib.JoinNode(op, left, right, (pred,))
            if isinstance(left, planlib.ScanNode):
                return planlib.JoinNode(op, right, left, (pred,))
            op = planlib.NL_JOIN  # no scan side: INL is illegal here
        if rng.integers(2):
            left, right = right, left
        return planlib.JoinNode(op, left, right, (pred,))

    dim_table, pred = first_dim
    low = build_join(ops[rng.integers(4)], scans["f"], scans[dim_table],
                     pred)
    dim_table, pred = second_dim
    return build_join(ops[rng.integers(4)], low, scans[dim_table], pred)


class TestVectorEngineDifferential:
    """Random plans x random budgets x random data: the two engines
    must return identical ExecutionOutcomes, stats and all."""

    @pytest.mark.parametrize("seed", _ENGINE_SEEDS)
    def test_random_plans_and_budgets_identical(self, seed):
        from repro import execute_plan

        query, gen, model = _engine_instance(seed)
        rng = np.random.default_rng(seed * 7 + 1)
        for _ in range(10):
            plan = _random_plan(query, rng)
            full = execute_plan(plan, query, gen, model, engine="volcano")
            assert full.completed
            budgets = [None, full.cost_spent]
            budgets += rng.uniform(5.0, full.cost_spent * 1.05,
                                   size=5).tolist()
            spills = [None, query.epps[int(rng.integers(2))].name]
            for spill in spills:
                for budget in budgets:
                    v = execute_plan(plan, query, gen, model, budget=budget,
                                     spill_epp=spill, engine="volcano")
                    w = execute_plan(plan, query, gen, model, budget=budget,
                                     spill_epp=spill, engine="vector")
                    assert v.completed == w.completed, plan.key
                    assert v.rows_out == w.rows_out, plan.key
                    assert repr(v.cost_spent) == repr(w.cost_spent), plan.key
                    assert set(v.stats) == set(w.stats)
                    for key in v.stats:
                        a, b = v.stats[key], w.stats[key]
                        assert (a.rows_outer, a.rows_inner, a.rows_out) == \
                            (b.rows_outer, b.rows_inner, b.rows_out), \
                            (plan.key, key)

    @pytest.mark.parametrize("seed", _ENGINE_SEEDS[:2])
    def test_random_plans_same_rowcount_across_engines(self, seed):
        """Sanity on the data plane: both engines agree on the full
        result cardinality for every random plan shape."""
        from repro import execute_plan

        query, gen, model = _engine_instance(seed)
        rng = np.random.default_rng(seed + 99)
        counts = set()
        for _ in range(6):
            plan = _random_plan(query, rng)
            v = execute_plan(plan, query, gen, model, engine="volcano")
            w = execute_plan(plan, query, gen, model, engine="vector")
            assert v.rows_out == w.rows_out
            counts.add(w.rows_out)
        assert len(counts) == 1  # every plan computes the same answer
