"""Unit tests for the ESS grid."""

import numpy as np
import pytest

from repro import ESSGrid, QueryError


class TestConstruction:
    def test_default_resolution_by_dim(self):
        assert ESSGrid(2).shape == (32, 32)
        assert ESSGrid(6).shape == (6,) * 6

    def test_explicit_resolution(self):
        grid = ESSGrid(3, resolution=[4, 5, 6])
        assert grid.shape == (4, 5, 6)
        assert grid.num_points == 120

    def test_log_spacing_ends(self):
        grid = ESSGrid(1, resolution=10, sel_min=1e-4)
        assert grid.values[0][0] == pytest.approx(1e-4)
        assert grid.values[0][-1] == pytest.approx(1.0)

    def test_per_dim_sel_min(self):
        grid = ESSGrid(2, resolution=5, sel_min=[1e-3, 1e-6])
        assert grid.values[0][0] == pytest.approx(1e-3)
        assert grid.values[1][0] == pytest.approx(1e-6)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_bad_dims(self, bad):
        with pytest.raises(QueryError):
            ESSGrid(bad)

    def test_rejects_tiny_resolution(self):
        with pytest.raises(QueryError):
            ESSGrid(2, resolution=1)

    def test_rejects_mismatched_lists(self):
        with pytest.raises(QueryError):
            ESSGrid(2, resolution=[4])
        with pytest.raises(QueryError):
            ESSGrid(2, resolution=4, sel_min=[1e-5])


class TestIndexing:
    @pytest.fixture
    def grid(self):
        return ESSGrid(3, resolution=[3, 4, 5], sel_min=1e-4)

    def test_flat_roundtrip(self, grid):
        for flat in range(grid.num_points):
            assert grid.flat_index(grid.coords_of(flat)) == flat

    def test_strides_row_major(self, grid):
        assert grid.strides == (20, 5, 1)

    def test_selectivities_of(self, grid):
        sels = grid.selectivities_of(0)
        assert sels == tuple(grid.values[d][0] for d in range(3))

    def test_origin_and_terminus(self, grid):
        assert grid.origin == (0, 0, 0)
        assert grid.terminus == (2, 3, 4)

    def test_coord_and_sel_arrays(self, grid):
        for dim in range(3):
            coords = grid.coord_array(dim)
            sels = grid.sel_array(dim)
            assert coords.shape == (grid.num_points,)
            assert np.allclose(sels, grid.values[dim][coords])

    def test_environment_covers_all_dims(self, grid):
        env = grid.environment()
        assert set(env) == {0, 1, 2}


class TestSnap:
    def test_exact_values_snap_to_themselves(self):
        grid = ESSGrid(2, resolution=8, sel_min=1e-4)
        coords = grid.snap((grid.values[0][3], grid.values[1][5]))
        assert coords == (3, 5)

    def test_out_of_range_clamped(self):
        grid = ESSGrid(2, resolution=8, sel_min=1e-4)
        assert grid.snap((1e-9, 2.0)) == (0, 7)

    def test_wrong_arity_rejected(self):
        grid = ESSGrid(2, resolution=8)
        with pytest.raises(QueryError):
            grid.snap((0.1,))

    def test_snap_is_nearest_in_log_space(self):
        grid = ESSGrid(1, resolution=5, sel_min=1e-4)
        # Geometric midpoint between values[1] and values[2]:
        mid = float(np.sqrt(grid.values[0][1] * grid.values[0][2]))
        assert grid.snap((mid * 1.01,)) == (2,)
        assert grid.snap((mid * 0.99,)) == (1,)


class TestLinesAndDominance:
    def test_line_indices_vary_only_free_dim(self):
        grid = ESSGrid(3, resolution=4, sel_min=1e-4)
        line = grid.line_indices({0: 2, 2: 1}, free_dim=1)
        assert len(line) == 4
        for k, flat in enumerate(line):
            assert grid.coords_of(flat) == (2, k, 1)

    def test_dominates(self):
        grid = ESSGrid(2, resolution=4)
        assert grid.dominates((2, 3), (1, 3))
        assert not grid.dominates((1, 3), (2, 3))
        assert not grid.dominates((2, 3), (2, 3))
        assert not grid.dominates((2, 1), (1, 2))  # incomparable

    def test_terminus_dominates_everything(self):
        grid = ESSGrid(2, resolution=4)
        for flat in range(grid.num_points - 1):
            assert grid.dominates(grid.terminus, grid.coords_of(flat))
