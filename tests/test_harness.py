"""Smoke tests for the experiment harness (small grids, tiny suite)."""

import pytest

from repro.bench import harness, report

SMALL_SUITE = ["3D_Q15", "4D_Q26"]


class TestGuaranteeExperiments:
    def test_fig8_rows(self):
        rows = harness.run_fig8(SMALL_SUITE, profile="smoke")
        assert [r["query"] for r in rows] == SMALL_SUITE
        for row in rows:
            assert row["sb_msog"] == row["D"] ** 2 + 3 * row["D"]
            assert row["pb_msog"] == pytest.approx(4 * 1.2 * row["rho_red"])

    def test_fig9_dimensionality_sweep(self):
        rows = harness.run_fig9((2, 3), profile="smoke")
        assert rows[0]["sb_msog"] == 10
        assert rows[1]["sb_msog"] == 18


class TestEmpiricalExperiments:
    def test_fig10_within_guarantees(self):
        rows = harness.run_fig10(SMALL_SUITE, profile="smoke")
        for row in rows:
            assert 1.0 <= row["pb_msoe"] <= row["pb_msog"] * (1 + 1e-9)
            assert 1.0 <= row["sb_msoe"] <= row["sb_msog"] * (1 + 1e-9)

    def test_fig11_aso_at_least_one(self):
        rows = harness.run_fig11(SMALL_SUITE, profile="smoke")
        for row in rows:
            assert row["pb_aso"] >= 1.0 - 1e-9
            assert row["sb_aso"] >= 1.0 - 1e-9

    def test_fig12_histogram(self):
        data = harness.run_fig12("3D_Q15", profile="smoke")
        edges, fractions = data["sb"]
        assert fractions.sum() == pytest.approx(1.0)
        assert data["sb_below_first_bin"] >= data["pb_below_first_bin"] * 0.5

    def test_fig13_ab_within_range(self):
        rows = harness.run_fig13(SMALL_SUITE, profile="smoke")
        for row in rows:
            assert row["ab_msoe"] <= row["ab_high_bound"] * (1 + 1e-9)
            assert row["ab_low_bound"] == 2 * row["D"] + 2


class TestTables:
    def test_table2_columns(self):
        rows = harness.run_table2(["3D_Q15"], profile="smoke")
        row = rows[0]
        assert 0 <= row["original_pct"] <= 100
        assert row["pct_at_1.5"] >= row["pct_at_1.2"]
        assert row["max_penalty"] >= 1.0

    def test_table3_trace(self):
        data = harness.run_table3("3D_Q15", profile="smoke")
        assert data["rows"]
        costs = [r["cumulative_cost"] for r in data["rows"]]
        assert costs == sorted(costs)
        assert data["rows"][-1]["completed"]

    def test_table4_penalties(self):
        rows = harness.run_table4(["3D_Q15"], profile="smoke")
        assert rows[0]["max_penalty"] >= 1.0


class TestTraceExperiments:
    def test_fig7_waypoints_monotone(self):
        data = harness.run_fig7("2D_Q91", qa=(0.04, 0.1), profile="smoke")
        for earlier, later in zip(data["waypoints"], data["waypoints"][1:]):
            assert all(b >= a - 1e-12 for a, b in zip(earlier, later))
        assert data["suboptimality"] <= 10 + 1e-9  # 2-epp guarantee

    def test_job_experiment_shape(self):
        data = harness.run_job(profile="smoke")
        assert data["native_mso"] > data["sb_msoe"]
        assert data["sb_msoe"] <= data["sb_msog"] * (1 + 1e-9)

    def test_lower_bound_rows(self):
        rows = harness.run_lower_bound((2, 3))
        assert rows[0]["measured_mso"] == 2.0
        assert rows[1]["measured_mso"] == 3.0


class TestAblations:
    def test_cost_ratio_sweep(self):
        rows = harness.run_ablation_cost_ratio("3D_Q15", ratios=(2.0, 3.0),
                                               profile="smoke")
        assert rows[0]["num_contours"] > rows[1]["num_contours"]

    def test_lambda_sweep_rho_monotone(self):
        rows = harness.run_ablation_lambda("3D_Q15", lams=(0.0, 0.5),
                                           profile="smoke")
        assert rows[0]["rho_red"] >= rows[1]["rho_red"]

    def test_resolution_sweep(self):
        rows = harness.run_ablation_resolution("3D_Q15", resolutions=(4, 6))
        assert rows[0]["grid_points"] == 64
        assert rows[1]["grid_points"] == 216

    def test_cost_noise_bound_inflation(self):
        rows = harness.run_ablation_cost_noise("3D_Q15",
                                               deltas=(0.0, 0.3),
                                               profile="smoke")
        assert rows[1]["bound_with_inflation"] > rows[0][
            "bound_with_inflation"
        ]

    def test_spill_order_ablation(self):
        data = harness.run_ablation_spill_order("3D_Q15", profile="smoke")
        assert data["posp_size"] > 0
        assert data["naive_unsound"] <= data["order_disagreements"]


class TestReportRendering:
    def test_format_table(self):
        text = report.format_table("T", ["a", "b"], [[1, 2.5], [3, 4.0]])
        assert "== T ==" in text
        assert "2.50" in text

    def test_format_histogram(self):
        import numpy as np

        text = report.format_histogram("H", np.array([0.0, 5.0, 10.0]),
                                       np.array([0.75, 0.25]))
        assert "75.00%" in text

    def test_format_value_special(self):
        assert report.format_value(float("nan")) == "-"
        assert report.format_value(float("inf")) == "inf"
        assert report.format_value(12345.0) == "12,345"

    def test_save_report(self, tmp_path):
        path = tmp_path / "out.txt"
        report.save_report(path, "hello")
        report.save_report(path, "world")
        assert path.read_text() == "hello\n\nworld\n\n"
