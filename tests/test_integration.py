"""End-to-end integration: full pipeline and the paper's shape findings."""

import pytest

from repro import (
    AlignedBound,
    ContourSet,
    ESS,
    NativeOptimizer,
    PlanBouquet,
    SpillBound,
    build_query,
    evaluate_algorithm,
)
from repro.bench import workloads


@pytest.fixture(scope="module")
def q91_stack():
    instance = workloads.load("3D_Q91", profile="smoke")
    ess, contours = instance.ess, instance.contours
    return {
        "ess": ess,
        "pb": PlanBouquet(ess, contours),
        "sb": SpillBound(ess, contours),
        "ab": AlignedBound(ess, contours),
        "native": NativeOptimizer(ess),
    }


class TestPipeline:
    def test_full_pipeline_from_query_name(self):
        query = build_query("2D_Q91")
        ess = ESS.build(query, resolution=8)
        contours = ContourSet(ess)
        sb = SpillBound(ess, contours)
        result = sb.run(query.true_location(), trace=True)
        assert result.completed_plan_key
        assert result.suboptimality <= sb.mso_guarantee()

    def test_all_algorithms_complete_everywhere(self, q91_stack):
        ess = q91_stack["ess"]
        for flat in range(0, ess.grid.num_points,
                          max(1, ess.grid.num_points // 40)):
            for key in ("pb", "sb", "ab"):
                result = q91_stack[key].run(flat)
                assert result.suboptimality >= 1.0 - 1e-9


class TestPaperShape:
    """The qualitative findings of the evaluation (Section 6)."""

    def test_sb_empirical_beats_pb_empirical(self, q91_stack):
        pb = evaluate_algorithm(q91_stack["pb"])
        sb = evaluate_algorithm(q91_stack["sb"])
        # Paper Fig. 10: SB's empirical MSO is better on every query.
        assert sb.mso <= pb.mso * 1.05

    def test_ab_empirical_no_worse_than_sb(self, q91_stack):
        sb = evaluate_algorithm(q91_stack["sb"])
        ab = evaluate_algorithm(q91_stack["ab"])
        # Paper Fig. 13: AB improves (or matches) SB's empirical MSO.
        assert ab.mso <= sb.mso * 1.10

    def test_native_mso_dwarfs_discovery(self, q91_stack):
        native_mso = q91_stack["native"].mso()
        sb = evaluate_algorithm(q91_stack["sb"])
        # Paper Sections 1/6.5: native worst cases are orders of
        # magnitude above the discovery algorithms.
        assert native_mso > 5 * sb.mso

    def test_all_within_guarantees(self, q91_stack):
        pb = evaluate_algorithm(q91_stack["pb"])
        sb = evaluate_algorithm(q91_stack["sb"])
        ab = evaluate_algorithm(q91_stack["ab"])
        assert pb.mso <= q91_stack["pb"].mso_guarantee() * (1 + 1e-9)
        assert sb.mso <= q91_stack["sb"].mso_guarantee() * (1 + 1e-9)
        assert ab.mso <= q91_stack["ab"].mso_guarantee() * (1 + 1e-9)

    def test_empirical_well_below_guarantee(self, q91_stack):
        """Paper Section 6.2.3: SB's empirical MSO sits far below its
        guarantee."""
        sb = evaluate_algorithm(q91_stack["sb"])
        assert sb.mso < q91_stack["sb"].mso_guarantee()

    def test_sb_aso_no_worse_than_pb(self, q91_stack):
        pb = evaluate_algorithm(q91_stack["pb"])
        sb = evaluate_algorithm(q91_stack["sb"])
        # Paper Fig. 11: MSO gains do not cost average-case behaviour.
        assert sb.aso <= pb.aso * 1.15


class TestCrossAlgorithmConsistency:
    def test_identical_oracle_costs(self, q91_stack):
        ess = q91_stack["ess"]
        flat = ess.grid.num_points // 2
        results = {
            key: q91_stack[key].run(flat) for key in ("pb", "sb", "ab")
        }
        costs = {r.optimal_cost for r in results.values()}
        assert len(costs) == 1

    def test_shared_contour_instance(self, q91_stack):
        assert q91_stack["pb"].contours is q91_stack["sb"].contours
