"""Unit tests for join-graph connectivity and geometry classification."""

import pytest

from repro import QueryError, join
from repro.query.joingraph import JoinGraph


def edges(*pairs):
    return [join(a, "x", b, "y", selectivity=0.01) for a, b in pairs]


class TestConnectivity:
    def test_chain_connected(self):
        graph = JoinGraph(["a", "b", "c"], edges(("a", "b"), ("b", "c")))
        assert graph.is_connected()

    def test_disconnected(self):
        graph = JoinGraph(["a", "b", "c", "d"], edges(("a", "b"), ("c", "d")))
        assert not graph.is_connected()

    def test_subset_connectivity(self):
        graph = JoinGraph(["a", "b", "c"], edges(("a", "b"), ("b", "c")))
        assert graph.is_connected({"a", "b"})
        assert not graph.is_connected({"a", "c"})

    def test_empty_subset_not_connected(self):
        graph = JoinGraph(["a", "b"], edges(("a", "b")))
        assert not graph.is_connected(set())

    def test_singleton_connected(self):
        graph = JoinGraph(["a", "b"], edges(("a", "b")))
        assert graph.is_connected({"a"})

    def test_duplicate_table_rejected(self):
        with pytest.raises(QueryError):
            JoinGraph(["a", "a"], [])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(QueryError):
            JoinGraph(["a", "b"], edges(("a", "z")))


class TestAccessors:
    def test_neighbors_and_degree(self):
        graph = JoinGraph(["a", "b", "c"], edges(("a", "b"), ("a", "c")))
        assert graph.neighbors("a") == {"b", "c"}
        assert graph.degree("a") == 2
        assert graph.degree("b") == 1

    def test_edges_between(self):
        graph = JoinGraph(["a", "b", "c"], edges(("a", "b"), ("b", "c")))
        assert len(graph.edges_between("a", "b")) == 1
        assert graph.edges_between("a", "c") == []

    def test_predicates_within(self):
        graph = JoinGraph(["a", "b", "c"], edges(("a", "b"), ("b", "c")))
        inner = graph.predicates_within({"a", "b"})
        assert len(inner) == 1 and inner[0].tables == ("a", "b")

    def test_predicates_across(self):
        graph = JoinGraph(["a", "b", "c"], edges(("a", "b"), ("b", "c")))
        crossing = graph.predicates_across({"a"}, {"b", "c"})
        assert len(crossing) == 1


class TestCyclesAndGeometry:
    def test_tree_has_no_cycle(self):
        graph = JoinGraph(["a", "b", "c"], edges(("a", "b"), ("b", "c")))
        assert not graph.has_cycle()

    def test_triangle_has_cycle(self):
        graph = JoinGraph(
            ["a", "b", "c"], edges(("a", "b"), ("b", "c"), ("a", "c"))
        )
        assert graph.has_cycle()

    def test_parallel_edges_count_as_cycle(self):
        preds = edges(("a", "b")) + [
            join("a", "x2", "b", "y2", selectivity=0.5, name="second")
        ]
        graph = JoinGraph(["a", "b"], preds)
        assert graph.has_cycle()

    def test_chain_geometry(self):
        graph = JoinGraph(["a", "b", "c", "d"],
                          edges(("a", "b"), ("b", "c"), ("c", "d")))
        assert graph.geometry() == "chain"

    def test_star_geometry(self):
        graph = JoinGraph(["hub", "a", "b", "c"],
                          edges(("hub", "a"), ("hub", "b"), ("hub", "c")))
        assert graph.geometry() == "star"

    def test_branch_geometry(self):
        graph = JoinGraph(
            ["a", "b", "c", "d", "e"],
            edges(("a", "b"), ("b", "c"), ("b", "d"), ("d", "e")),
        )
        assert graph.geometry() == "branch"

    def test_cyclic_geometry(self):
        graph = JoinGraph(
            ["a", "b", "c"], edges(("a", "b"), ("b", "c"), ("a", "c"))
        )
        assert graph.geometry() == "cyclic"

    def test_two_tables_is_chain(self):
        graph = JoinGraph(["a", "b"], edges(("a", "b")))
        assert graph.geometry() == "chain"
