"""Lazy contour-adaptive ESS: bit-identity, economy, and mode plumbing.

The load-bearing property is *bit-identity*: every point a lazy surface
resolves must equal the eager build exactly (``np.array_equal``, never a
tolerance), because the optimizer DP is elementwise per grid location.
Plan *ids* are surface-local (insertion order vs globally sorted), so
identity is always checked through plan *keys*.
"""

import numpy as np
import pytest

from repro import ContourSet, ESSGrid, PlanBouquet, SpillBound
from repro.core.aligned_bound import AlignedBound
from repro.core.mso import evaluate_algorithm
from repro.errors import ReproError
from repro.ess.lazy import (
    ESS_MODES,
    LazyContourSet,
    LazyESS,
    contour_class,
    contours_for,
    ess_class,
    resolve_ess_mode,
)
from repro.ess.ocs import ESS
from tests.conftest import fuzz_seeds, make_star_query

SEEDS = fuzz_seeds([2, 7, 19])

_ALGORITHMS = {
    "pb": PlanBouquet,
    "sb": SpillBound,
    "ab": AlignedBound,
}


def _build_pair(num_epps=3, resolution=8):
    """Fresh (eager, lazy) surfaces of the same star workload."""
    query = make_star_query(num_epps)
    eager = ESS.build(
        query, ESSGrid(num_epps, resolution=resolution, sel_min=1e-6)
    )
    lazy = LazyESS(
        query, ESSGrid(num_epps, resolution=resolution, sel_min=1e-6)
    )
    return eager, lazy


def _keys_at(ess, flats):
    """Plan keys chosen at ``flats`` (the id-portable identity check)."""
    pids = np.asarray(ess.plan_ids[np.asarray(flats, dtype=np.int64)])
    return [ess.plan_keys[int(pid)] for pid in np.ravel(pids)]


@pytest.fixture(scope="module")
def pair():
    return _build_pair()


@pytest.fixture(scope="module")
def contour_pair(pair):
    eager, lazy = pair
    return ContourSet(eager), contours_for(lazy, 2.0)


class TestModeResolution:
    def test_default_is_eager(self, monkeypatch):
        monkeypatch.delenv("REPRO_ESS", raising=False)
        assert resolve_ess_mode() == "eager"
        assert resolve_ess_mode(None) == "eager"

    def test_explicit_modes(self):
        assert resolve_ess_mode("eager") == "eager"
        assert resolve_ess_mode("lazy") == "lazy"
        assert resolve_ess_mode(" LAZY ") == "lazy"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ESS", "lazy")
        assert resolve_ess_mode() == "lazy"

    def test_bad_explicit_mode(self):
        with pytest.raises(ReproError, match=r"--ess"):
            resolve_ess_mode("greedy")

    def test_bad_env_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_ESS", "greedy")
        with pytest.raises(ReproError, match="REPRO_ESS"):
            resolve_ess_mode()

    def test_class_selectors(self):
        assert ess_class("eager") is ESS
        assert ess_class("lazy") is LazyESS
        assert contour_class("eager") is ContourSet
        assert contour_class("lazy") is LazyContourSet
        assert set(ESS_MODES) == {"eager", "lazy"}


class TestBitIdentity:
    def test_resolved_points_match_eager(self, pair):
        eager, lazy = pair
        rng = np.random.default_rng(29)
        flats = rng.choice(eager.grid.num_points, size=200, replace=False)
        lazy.resolve(flats)
        assert np.array_equal(
            lazy.optimal_cost_at(flats), eager.optimal_cost_at(flats)
        )
        assert _keys_at(lazy, flats) == _keys_at(eager, flats)

    def test_full_materialization_is_bit_identical(self, pair):
        eager, lazy = pair
        lazy.resolve_all()
        assert np.array_equal(
            np.asarray(lazy.optimal_cost), np.asarray(eager.optimal_cost)
        )
        everything = np.arange(eager.grid.num_points)
        assert _keys_at(lazy, everything) == _keys_at(eager, everything)
        assert sorted(lazy.plan_keys) == sorted(eager.plan_keys)

    def test_cost_extremes_match(self, pair):
        eager, lazy = pair
        assert float(lazy.min_cost) == float(eager.min_cost)
        assert float(lazy.max_cost) == float(eager.max_cost)

    def test_contour_budgets_and_members_match(self, contour_pair):
        eager_cs, lazy_cs = contour_pair
        assert lazy_cs.num_contours == eager_cs.num_contours
        for k in range(1, eager_cs.num_contours + 1):
            e, l = eager_cs.contour(k), lazy_cs.contour(k)
            assert l.budget == e.budget
            assert np.array_equal(np.sort(l.points), np.sort(e.points))

    def test_band_assignment_matches(self, contour_pair):
        eager_cs, lazy_cs = contour_pair
        assert np.array_equal(
            np.asarray(lazy_cs.band), np.asarray(eager_cs.band)
        )


class TestDiscoveryIdentity:
    @pytest.mark.parametrize("algo", ["pb", "sb", "ab"])
    def test_single_run_identical(self, pair, contour_pair, algo):
        eager, lazy = pair
        eager_cs, lazy_cs = contour_pair
        qa = eager.grid.snap(eager.query.true_location())
        cls = _ALGORITHMS[algo]
        res_e = cls(eager, eager_cs).run(qa, trace=True)
        res_l = cls(lazy, lazy_cs).run(qa, trace=True)
        assert repr(res_l.total_cost) == repr(res_e.total_cost)
        assert repr(res_l.optimal_cost) == repr(res_e.optimal_cost)
        assert repr(res_l.suboptimality) == repr(res_e.suboptimality)
        keys_e = [eager.plan_keys[r.plan_id] for r in res_e.executions]
        keys_l = [lazy.plan_keys[r.plan_id] for r in res_l.executions]
        assert keys_l == keys_e

    def test_exhaustive_sweep_identical(self):
        eager, lazy = _build_pair(num_epps=2, resolution=10)
        eager_eval = evaluate_algorithm(
            SpillBound(eager, ContourSet(eager)), engine="batch"
        )
        lazy_eval = evaluate_algorithm(
            SpillBound(lazy, contours_for(lazy, 2.0)), engine="batch"
        )
        assert np.array_equal(
            lazy_eval.suboptimality, eager_eval.suboptimality
        )
        assert lazy_eval.mso == eager_eval.mso
        assert lazy_eval.aso == eager_eval.aso

    def test_restricted_sweep_identical(self):
        eager, lazy = _build_pair(num_epps=2, resolution=10)
        rng = np.random.default_rng(31)
        points = sorted(
            rng.choice(eager.grid.num_points, size=17, replace=False)
        )
        eager_eval = evaluate_algorithm(
            SpillBound(eager, ContourSet(eager)), points=points,
            engine="batch",
        )
        lazy_eval = evaluate_algorithm(
            SpillBound(lazy, contours_for(lazy, 2.0)), points=points,
            engine="batch",
        )
        assert np.array_equal(
            lazy_eval.suboptimality, eager_eval.suboptimality
        )


class TestLazyViews:
    def test_extremes_do_not_materialize(self):
        _, lazy = _build_pair()
        before = lazy.num_resolved
        lazy.optimal_cost.min()
        lazy.optimal_cost.max()
        assert lazy.num_resolved == before

    def test_scalar_and_negative_indexing(self, pair):
        eager, lazy = pair
        assert lazy.optimal_cost[5] == eager.optimal_cost[5]
        assert lazy.optimal_cost[-1] == eager.optimal_cost[-1]
        assert lazy.plan_ids.shape == eager.plan_ids.shape

    def test_fancy_and_boolean_indexing(self, pair):
        eager, lazy = pair
        idx = np.array([[3, 9], [27, 81]])
        assert np.array_equal(
            lazy.optimal_cost[idx], eager.optimal_cost[idx]
        )
        mask = np.zeros(eager.grid.num_points, dtype=bool)
        mask[::37] = True
        assert np.array_equal(
            lazy.optimal_cost[mask], eager.optimal_cost[mask]
        )

    def test_arithmetic_and_comparison(self, pair):
        eager, lazy = pair
        assert np.array_equal(
            lazy.optimal_cost / 2.0, np.asarray(eager.optimal_cost) / 2.0
        )
        assert np.array_equal(
            lazy.optimal_cost <= eager.max_cost,
            np.asarray(eager.optimal_cost) <= eager.max_cost,
        )

    def test_views_are_unhashable(self, pair):
        _, lazy = pair
        with pytest.raises(TypeError):
            hash(lazy.optimal_cost)

    def test_band_view_scalar(self, contour_pair):
        eager_cs, lazy_cs = contour_pair
        assert lazy_cs.band[11] == eager_cs.band[11]


class TestEconomy:
    def test_discovery_resolves_a_strict_subset(self):
        _, lazy = _build_pair()
        contours = contours_for(lazy, 2.0)
        qa = lazy.grid.snap(lazy.query.true_location())
        SpillBound(lazy, contours).run(qa)
        assert 0 < lazy.optimizer_calls < lazy.grid.num_points

    def test_single_contour_resolves_less_than_sublevel(self):
        _, lazy = _build_pair()
        contours = contours_for(lazy, 2.0)
        mid = max(1, contours.num_contours // 2)
        contours.contour(mid)
        assert lazy.num_resolved < lazy.grid.num_points

    def test_optimizer_call_counter_matches_registry(self):
        from repro.obs.metrics import REGISTRY

        _, lazy = _build_pair(num_epps=2, resolution=6)
        before = lazy.optimizer_calls
        count = lazy.resolve(np.arange(7))
        assert lazy.optimizer_calls - before == count
        assert REGISTRY.counter("ess_optimizer_calls") >= count


class TestRandomizedDifferential:
    """PR-4's workload generator drives lazy-vs-eager differentials."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_conformance_workload_surfaces_match(self, seed):
        from repro.conformance import workloads as cw

        cw.clear_cache()
        eager = cw.build_conformance_instance(
            seed, use_cache=False, ess_mode="eager"
        )
        lazy = cw.build_conformance_instance(
            seed, use_cache=False, ess_mode="lazy"
        )
        assert lazy.ess.is_lazy and not eager.ess.is_lazy
        lazy.ess.resolve_all()
        assert np.array_equal(
            np.asarray(lazy.ess.optimal_cost),
            np.asarray(eager.ess.optimal_cost),
        )
        everything = np.arange(eager.ess.grid.num_points)
        assert _keys_at(lazy.ess, everything) == _keys_at(
            eager.ess, everything
        )
        cw.clear_cache()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_conformance_workload_sweeps_match(self, seed):
        from repro.conformance import workloads as cw

        cw.clear_cache()
        evals = {}
        for mode in ("eager", "lazy"):
            instance = cw.build_conformance_instance(
                seed, use_cache=False, ess_mode=mode
            )
            algorithm = SpillBound(instance.ess, instance.contours)
            evals[mode] = evaluate_algorithm(algorithm, engine="batch")
        assert np.array_equal(
            evals["lazy"].suboptimality, evals["eager"].suboptimality
        )
        cw.clear_cache()


class TestConformanceSuiteLazy:
    def test_seeded_check_passes_on_lazy(self):
        """``repro check`` on lazy surfaces: zero violations (ISSUE 6)."""
        from repro.conformance.suite import run_suite

        report = run_suite(
            num_workloads=2, base_seed=5, engines=("loop", "batch"),
            trace_samples=2, use_cache=False, ess_mode="lazy",
        )
        assert report.ok
        assert not report.monitor.violations


class TestWorkloadRegistryWiring:
    def test_load_lazy_mode(self, monkeypatch, tmp_path):
        from repro.bench import workloads

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        workloads.clear_cache()
        instance = workloads.load("2D_Q42", profile="smoke",
                                  ess_mode="lazy")
        assert isinstance(instance.ess, LazyESS)
        assert isinstance(instance.contours, LazyContourSet)
        provenance = instance.ess.provenance
        assert provenance["build_kwargs"]["ess_mode"] == "lazy"
        assert provenance["disk_key"]["query_name"] == "2D_Q42"
        workloads.clear_cache()

    def test_modes_get_distinct_registry_entries(self, monkeypatch,
                                                 tmp_path):
        from repro.bench import workloads

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        workloads.clear_cache()
        lazy = workloads.load("2D_Q42", profile="smoke", ess_mode="lazy")
        eager = workloads.load("2D_Q42", profile="smoke", ess_mode="eager")
        assert lazy is not eager
        assert isinstance(eager.ess, ESS) and not eager.ess.is_lazy
        workloads.clear_cache()

    def test_env_mode_reaches_registry(self, monkeypatch, tmp_path):
        from repro.bench import workloads

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_ESS", "lazy")
        workloads.clear_cache()
        instance = workloads.load("2D_Q42", profile="smoke")
        assert instance.ess.is_lazy
        workloads.clear_cache()
