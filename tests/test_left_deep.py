"""Tests for the left-deep search-space restriction."""

import numpy as np
import pytest

from repro import ESS, ESSGrid, Optimizer
from repro.optimizer.plans import JoinNode, ScanNode
from tests.conftest import make_star_query, make_toy_query


def is_left_deep(plan):
    for node in plan.iter_nodes():
        if isinstance(node, JoinNode) and not isinstance(node.inner,
                                                         ScanNode):
            return False
    return True


class TestLeftDeepOptimizer:
    def test_every_plan_is_left_deep(self):
        query = make_star_query(3)
        optimizer = Optimizer(query, left_deep=True)
        for sels in [(1e-5, 1e-4, 1e-3), (0.5, 0.5, 0.5),
                     (1e-6, 0.9, 1e-2)]:
            plan, _ = optimizer.optimize_at(sels)
            assert is_left_deep(plan), plan.key

    def test_bushy_never_worse(self):
        query = make_star_query(3)
        bushy = Optimizer(query, left_deep=False)
        linear = Optimizer(query, left_deep=True)
        for sels in [(1e-5, 1e-4, 1e-3), (0.3, 1e-3, 0.7)]:
            _, bushy_cost = bushy.optimize_at(sels)
            _, linear_cost = linear.optimize_at(sels)
            assert bushy_cost <= linear_cost * (1 + 1e-9)

    def test_left_deep_cost_valid(self):
        """Left-deep costs must still match their plan's recosting."""
        from repro import DEFAULT_COST_MODEL
        from repro.optimizer.plans import plan_cost

        query = make_toy_query()
        optimizer = Optimizer(query, left_deep=True)
        for sels in [(1e-6, 1e-6), (1e-2, 1e-3)]:
            plan, cost = optimizer.optimize_at(sels)
            recost = plan_cost(plan, query, DEFAULT_COST_MODEL,
                               dict(enumerate(sels)))
            assert recost == pytest.approx(cost, rel=1e-9)

    def test_left_deep_ess_smaller_or_equal_posp(self):
        query = make_toy_query()
        grid = ESSGrid(2, resolution=10, sel_min=1e-6)
        bushy = ESS.build(query, grid)
        grid2 = ESSGrid(2, resolution=10, sel_min=1e-6)
        linear = ESS.build(query, grid2, left_deep=True)
        assert linear.posp_size <= bushy.posp_size + 2  # usually smaller
        assert (linear.optimal_cost >= bushy.optimal_cost * (1 - 1e-9)).all()

    def test_guarantee_holds_in_left_deep_space(self):
        from repro import ContourSet, SpillBound, evaluate_algorithm

        query = make_toy_query()
        ess = ESS.build(query, ESSGrid(2, resolution=10, sel_min=1e-6),
                        left_deep=True)
        sb = SpillBound(ess, ContourSet(ess))
        evaluation = evaluate_algorithm(sb)
        assert evaluation.mso <= sb.mso_guarantee() * (1 + 1e-9)
