"""Unit tests for the Theorem 4.6 lower-bound game."""

import pytest

from repro import AdversarialGame, DiscoveryError, lower_bound_demonstration
from repro.core.lower_bound import play_round_robin


class TestGame:
    def test_requires_two_dims(self):
        with pytest.raises(DiscoveryError):
            AdversarialGame(1)

    def test_subbudget_probe_learns_nothing(self):
        game = AdversarialGame(3)
        assert not game.probe(0, 0.5)
        assert game.alive == {0, 1, 2}
        assert not game.finished

    def test_full_probe_eliminates_candidate(self):
        game = AdversarialGame(3)
        assert game.probe(0, 1.0)
        assert game.alive == {1, 2}

    def test_invalid_dim_rejected(self):
        game = AdversarialGame(2)
        with pytest.raises(DiscoveryError):
            game.probe(5, 1.0)

    def test_finished_requires_resolution_of_last(self):
        game = AdversarialGame(2)
        game.probe(0, 1.0)
        assert not game.finished  # dim 1 survives but is unresolved
        game.probe(1, 1.0)
        assert game.finished

    def test_spend_capped_at_budget(self):
        game = AdversarialGame(2, contour_cost=10.0)
        game.probe(0, 100.0)
        assert game.total_spent == pytest.approx(10.0)

    def test_repeated_probe_same_dim_wastes_budget(self):
        game = AdversarialGame(3)
        game.probe(0, 1.0)
        game.probe(0, 1.0)  # already eliminated: pure waste
        assert game.total_spent == pytest.approx(2.0)
        assert game.alive == {1, 2}


class TestTheorem:
    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6, 8])
    def test_round_robin_achieves_exactly_d(self, d):
        assert lower_bound_demonstration(d) == pytest.approx(float(d))

    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_no_strategy_beats_d(self, d):
        """Any probe sequence pays >= D: each candidate elimination
        costs a full contour budget and D-1 eliminations plus one
        confirmation are forced."""
        game = play_round_robin(d)
        assert game.suboptimality() >= d - 1e-9

    def test_cheap_probes_cannot_shortcut(self):
        game = AdversarialGame(4)
        for dim in range(4):
            game.probe(dim, 0.25)  # four cheap probes learn nothing
        assert not game.finished
        assert len(game.alive) == 4
