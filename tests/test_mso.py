"""Unit tests for the MSO/ASO evaluation machinery."""

import numpy as np
import pytest

from repro import evaluate_algorithm
from repro.core.mso import Evaluation


class TestEvaluation:
    @pytest.fixture
    def evaluation(self):
        sub = np.array([1.0, 2.0, 3.0, 10.0, 1.5, 4.5])
        return Evaluation(
            suboptimality=sub,
            mso=float(sub.max()),
            aso=float(sub.mean()),
            worst_location=int(np.argmax(sub)),
        )

    def test_basic_stats(self, evaluation):
        assert evaluation.mso == 10.0
        assert evaluation.aso == pytest.approx(22.0 / 6)
        assert evaluation.worst_location == 3

    def test_percentile(self, evaluation):
        assert evaluation.percentile(100) == 10.0
        assert evaluation.percentile(0) == 1.0

    def test_fraction_below(self, evaluation):
        assert evaluation.fraction_below(2.5) == pytest.approx(3 / 6)
        assert evaluation.fraction_below(100) == 1.0

    def test_histogram_fractions_sum_to_one(self, evaluation):
        _, fractions = evaluation.histogram(bin_width=5.0)
        assert fractions.sum() == pytest.approx(1.0)

    def test_histogram_bin_contents(self, evaluation):
        edges, fractions = evaluation.histogram(bin_width=5.0)
        assert edges[0] == 0.0
        assert fractions[0] == pytest.approx(5 / 6)  # all but the 10.0

    def test_histogram_caps_bins(self, evaluation):
        edges, _ = evaluation.histogram(bin_width=1.0, max_bins=3)
        assert len(edges) <= 4


class TestEvaluateAlgorithm:
    def test_uses_vectorized_path(self, toy_pb):
        evaluation = evaluate_algorithm(toy_pb)
        n = toy_pb.ess.grid.num_points
        assert evaluation.suboptimality.shape == (n,)

    def test_scalar_path_matches_vectorized(self, toy_pb):
        full = evaluate_algorithm(toy_pb)
        points = [0, 10, 100, 250]
        sampled = evaluate_algorithm(toy_pb, points=points)
        for k, flat in enumerate(points):
            assert sampled.suboptimality[k] == pytest.approx(
                full.suboptimality[flat]
            )

    def test_sampled_worst_location_is_flat_index(self, toy_sb):
        points = [5, 50, 222]
        evaluation = evaluate_algorithm(toy_sb, points=points)
        assert evaluation.worst_location in points

    def test_mso_at_least_aso(self, toy_sb):
        evaluation = evaluate_algorithm(toy_sb)
        assert evaluation.mso >= evaluation.aso >= 1.0 - 1e-9


class TestSweepEngines:
    def test_unknown_engine_rejected(self, toy_sb):
        with pytest.raises(ValueError, match="sweep engine"):
            evaluate_algorithm(toy_sb, engine="warp")

    @pytest.mark.parametrize("fixture", ["toy_pb", "toy_sb", "toy_ab"])
    def test_loop_and_batch_bit_identical(self, request, fixture):
        algorithm = request.getfixturevalue(fixture)
        loop = evaluate_algorithm(algorithm, engine="loop")
        batch = evaluate_algorithm(algorithm, engine="batch")
        assert np.array_equal(loop.suboptimality, batch.suboptimality)
        assert loop.mso == batch.mso
        assert loop.worst_location == batch.worst_location

    def test_auto_matches_loop_on_restricted_points(self, toy_ab):
        points = [2, 40, 40, 317]
        auto = evaluate_algorithm(toy_ab, points=points)
        loop = evaluate_algorithm(toy_ab, points=points, engine="loop")
        assert np.array_equal(auto.suboptimality, loop.suboptimality)
