"""Unit tests for the native-optimizer baseline."""

import pytest

from repro import NativeOptimizer


@pytest.fixture(scope="module")
def native(request):
    toy_ess = request.getfixturevalue("toy_ess")
    return NativeOptimizer(toy_ess)


class TestNativeOptimizer:
    def test_plan_for_estimate(self, native, toy_ess):
        pid = native.plan_for_estimate(toy_ess.grid.origin)
        assert pid == int(toy_ess.plan_ids[0])

    def test_suboptimality_identity(self, native, toy_ess):
        # Estimating correctly yields sub-optimality 1.
        flat = 111
        coords = toy_ess.grid.coords_of(flat)
        assert native.suboptimality(coords, coords) == pytest.approx(1.0)

    def test_suboptimality_at_least_one(self, native, toy_ess):
        assert native.suboptimality(toy_ess.grid.origin,
                                    toy_ess.grid.terminus) >= 1.0 - 1e-9

    def test_mso_dominates_any_pair(self, native, toy_ess):
        mso = native.mso()
        grid = toy_ess.grid
        for qe, qa in [((0, 0), (10, 10)), ((15, 3), (2, 18)),
                       (grid.terminus, grid.origin)]:
            assert native.suboptimality(qe, qa) <= mso * (1 + 1e-9)

    def test_worst_pair_achieves_mso(self, native):
        qe, qa, worst = native.worst_pair()
        assert worst == pytest.approx(native.mso())
        assert native.suboptimality(qe, qa) == pytest.approx(worst)

    def test_run_returns_single_execution(self, native):
        result = native.run(200, trace=True)
        assert result.num_executions == 1
        assert result.executions[0].completed

    def test_run_cost_matches_suboptimality(self, native, toy_ess):
        flat = 288
        result = native.run(flat)
        coords = toy_ess.grid.coords_of(flat)
        assert result.suboptimality == pytest.approx(
            native.suboptimality(toy_ess.grid.origin, coords)
        )

    def test_aso_is_mean(self, native):
        profile = native.suboptimality_for_estimate((0, 0))
        assert native.aso() == pytest.approx(float(profile.mean()))

    def test_profile_shape(self, native, toy_ess):
        profile = native.suboptimality_for_estimate((3, 3))
        assert profile.shape == (toy_ess.grid.num_points,)
        assert (profile >= 1.0 - 1e-9).all()

    def test_estimate_location_from_catalog(self, native, toy_ess):
        from repro import StatisticsCatalog

        catalog = StatisticsCatalog(toy_ess.query.schema)
        coords = native.estimate_location(catalog)
        assert len(coords) == toy_ess.grid.num_dims
        # The uniformity rule for part-lineitem is 1/2M: the snapped
        # estimate sits in the grid's low region.
        grid = toy_ess.grid
        assert grid.selectivity(0, coords[0]) == pytest.approx(
            1 / 2_000_000, rel=3.0
        )

    def test_catalog_estimate_drives_run(self, native, toy_ess):
        from repro import StatisticsCatalog

        catalog = StatisticsCatalog(toy_ess.query.schema)
        qe = native.estimate_location(catalog)
        result = native.run(300, qe=qe)
        assert result.suboptimality >= 1.0 - 1e-9
