"""Tests for the observability CLI surface: ``repro trace``,
``repro stats``, and the ``--trace-out`` flag."""

import json

import pytest

from repro.cli import main
from repro.obs.export import read_trace_jsonl


def run_cli(capsys, *argv):
    code = main(["--profile", "smoke", *argv])
    assert code == 0
    return capsys.readouterr().out


class TestTraceCommand:
    def test_trace_writes_jsonl_and_html(self, capsys, tmp_path):
        out_dir = tmp_path / "tr"
        out = run_cli(capsys, "trace", "--query", "2D_Q42",
                      "--out", str(out_dir))
        assert "sb on 2D_Q42" in out
        jsonl = out_dir / "2D_Q42_sb.trace.jsonl"
        html = out_dir / "2D_Q42_sb.waterfall.html"
        assert jsonl.exists() and html.exists()
        meta, spans = read_trace_jsonl(str(jsonl))
        assert meta["schema"] == "repro.trace.v1"
        assert any(s["name"] == "discovery.run" for s in spans)
        assert any(s["name"] == "discovery.execution" for s in spans)
        text = html.read_text(encoding="utf-8")
        assert "<svg" in text and "2D_Q42" in text

    def test_format_jsonl_skips_html(self, capsys, tmp_path):
        out_dir = tmp_path / "tr"
        run_cli(capsys, "trace", "--query", "2D_Q42",
                "--out", str(out_dir), "--format", "jsonl")
        assert (out_dir / "2D_Q42_sb.trace.jsonl").exists()
        assert not (out_dir / "2D_Q42_sb.waterfall.html").exists()

    def test_format_html_skips_jsonl(self, capsys, tmp_path):
        out_dir = tmp_path / "tr"
        run_cli(capsys, "trace", "--query", "2D_Q42",
                "--out", str(out_dir), "--format", "html")
        assert not (out_dir / "2D_Q42_sb.trace.jsonl").exists()
        assert (out_dir / "2D_Q42_sb.waterfall.html").exists()

    def test_unknown_format_reports_error(self, capsys, tmp_path):
        code = main(["--profile", "smoke", "trace", "--query", "2D_Q42",
                     "--out", str(tmp_path / "tr"), "--format", "bogus"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown export format" in err and "bogus" in err

    def test_out_pointing_at_file_reports_error(self, capsys, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        code = main(["--profile", "smoke", "trace", "--query", "2D_Q42",
                     "--out", str(blocker)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not a directory" in err

    def test_unknown_query_reports_error(self, capsys, tmp_path):
        code = main(["--profile", "smoke", "trace", "--query", "NO_SUCH",
                     "--out", str(tmp_path / "tr")])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")


class TestStatsCommand:
    def test_prometheus_output(self, capsys):
        out = run_cli(capsys, "stats", "--query", "2D_Q42")
        assert "# TYPE repro_discovery_runs_total counter" in out
        assert 'repro_discovery_runs_total{algorithm="sb"}' in out
        assert "# TYPE repro_phase_seconds_total counter" in out

    def test_json_output_parses(self, capsys):
        out = run_cli(capsys, "stats", "--query", "2D_Q42",
                      "--format", "json")
        summary = json.loads(out)
        assert set(summary) >= {"phases", "counters", "gauges",
                                "histograms"}
        assert summary["counters"]['discovery_runs{algorithm=sb}'] >= 1

    def test_stats_without_query_renders(self, capsys):
        # No run is forced; whatever the process accumulated renders.
        code = main(["--profile", "smoke", "stats"])
        assert code == 0

    def test_unknown_format_reports_error(self, capsys):
        code = main(["--profile", "smoke", "stats", "--format", "xml"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown export format" in err


class TestTraceOutFlag:
    def test_run_trace_out_writes_jsonl(self, capsys, tmp_path):
        target = tmp_path / "runs" / "q42.jsonl"
        out = run_cli(capsys, "run", "2D_Q42", "--trace-out", str(target))
        assert f"wrote {target}" in out
        meta, spans = read_trace_jsonl(str(target))
        assert meta["schema"] == "repro.trace.v1"
        assert any(s["name"] == "discovery.run" for s in spans)

    def test_trace_out_directory_reports_error(self, capsys, tmp_path):
        code = main(["--profile", "smoke", "run", "2D_Q42",
                     "--trace-out", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "is a directory" in err

    def test_tracer_uninstalled_after_command(self, capsys, tmp_path):
        from repro.obs import trace

        before = trace.active_tracer()
        run_cli(capsys, "run", "2D_Q42",
                "--trace-out", str(tmp_path / "t.jsonl"))
        assert trace.active_tracer() is before
