"""Tests for the metrics registry, the TIMERS shim, and the
Prometheus text exposition."""

import json

import pytest

from repro.obs.export import prometheus_text, sanitize_metric_name
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    _flat_name,
    _unflatten,
)
from repro.perf.timers import TIMERS, PhaseTimer


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_default_and_incr(self, registry):
        assert registry.counter("missing") == 0
        registry.incr("hits")
        registry.incr("hits", 4)
        assert registry.counter("hits") == 5

    def test_labelled_counters_are_separate_series(self, registry):
        registry.incr("spills", labels={"epp": "e1"})
        registry.incr("spills", 2, labels={"epp": "e2"})
        assert registry.counter("spills", labels={"epp": "e1"}) == 1
        assert registry.counter("spills", labels={"epp": "e2"}) == 2
        assert registry.counter("spills") == 0

    def test_gauge_last_write_wins(self, registry):
        registry.gauge("cost", 10.0)
        registry.gauge("cost", 3.5)
        assert registry.gauge_value("cost") == 3.5
        assert registry.gauge_value("missing", default=-1) == -1

    def test_histogram_cumulative_buckets(self):
        hist = Histogram(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        # Prometheus semantics: counts[i] counts observations <= bound.
        assert hist.counts == [1, 2, 3]
        assert hist.count == 4
        assert hist.total == 555.5

    def test_observe_uses_default_buckets(self, registry):
        registry.observe("charge", 42.0)
        dump = registry.summary()["histograms"]["charge"]
        assert tuple(dump["buckets"]) == DEFAULT_BUCKETS
        assert dump["count"] == 1

    def test_phase_context_accumulates(self, registry):
        for _ in range(3):
            with registry.phase("sweep"):
                pass
        phases = registry.summary()["phases"]
        assert phases["sweep"]["count"] == 3
        assert phases["sweep"]["total_s"] >= 0.0

    def test_record_phase_external_duration(self, registry):
        registry.record_phase("io", 1.5)
        registry.record_phase("io", 0.5)
        assert registry.summary()["phases"]["io"] == {
            "total_s": 2.0, "count": 2,
        }

    def test_reset_clears_everything(self, registry):
        registry.incr("c")
        registry.gauge("g", 1)
        registry.observe("h", 1)
        registry.record_phase("p", 1)
        registry.reset()
        summary = registry.summary()
        assert summary == {"phases": {}, "counters": {},
                           "gauges": {}, "histograms": {}}


class TestFlatNames:
    def test_unlabelled_passthrough(self):
        assert _flat_name("hits", ()) == "hits"
        assert _unflatten("hits") == ("hits", None)

    def test_labelled_round_trip(self):
        flat = _flat_name("spills", (("algo", "sb"), ("epp", "e1")))
        assert flat == "spills{algo=sb,epp=e1}"
        name, labels = _unflatten(flat)
        assert name == "spills"
        assert labels == {"algo": "sb", "epp": "e1"}


class TestMerge:
    def test_merge_adds_counters_and_phases(self, registry):
        worker = MetricsRegistry()
        worker.incr("points", 100)
        worker.incr("spills", 2, labels={"epp": "e1"})
        worker.record_phase("sweep", 1.0)
        registry.incr("points", 10)
        registry.record_phase("sweep", 0.5)

        registry.merge(worker.summary())
        assert registry.counter("points") == 110
        assert registry.counter("spills", labels={"epp": "e1"}) == 2
        assert registry.summary()["phases"]["sweep"] == {
            "total_s": 1.5, "count": 2,
        }

    def test_merge_gauges_last_write_wins(self, registry):
        registry.gauge("cost", 1.0)
        worker = MetricsRegistry()
        worker.gauge("cost", 9.0)
        registry.merge(worker.summary())
        assert registry.gauge_value("cost") == 9.0

    def test_merge_adds_histograms(self, registry):
        worker = MetricsRegistry()
        for value in (1.0, 100.0):
            registry.observe("charge", value)
            worker.observe("charge", value)
        registry.merge(worker.summary())
        dump = registry.summary()["histograms"]["charge"]
        assert dump["count"] == 4
        assert dump["sum"] == 202.0

    def test_merge_bucket_mismatch_raises(self):
        hist = Histogram(buckets=(1.0, 2.0))
        other = Histogram(buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket mismatch"):
            hist.merge(other.dump())

    def test_merge_empty_summary_is_noop(self, registry):
        registry.incr("c")
        registry.merge({})
        assert registry.counter("c") == 1


class TestPhaseTimerShim:
    def test_bare_timer_owns_private_registry(self):
        timer = PhaseTimer()
        timer.incr("private")
        assert timer.counter("private") == 1
        assert timer.registry is not REGISTRY
        assert REGISTRY.counter("private") == 0

    def test_global_timers_backed_by_registry(self):
        # TIMERS and REGISTRY are two views over one store, so legacy
        # call sites and new instrumentation always agree.
        assert TIMERS.registry is REGISTRY
        TIMERS.incr("shim_probe")
        try:
            assert REGISTRY.counter("shim_probe") == TIMERS.counter(
                "shim_probe")
        finally:
            REGISTRY._counters.pop(("shim_probe", ()), None)

    def test_summary_keeps_legacy_shape(self):
        timer = PhaseTimer()
        with timer.phase("build"):
            pass
        timer.incr("cache_hits", 3)
        summary = timer.summary()
        assert summary["counters"] == {"cache_hits": 3}
        assert set(summary["phases"]) == {"build"}
        assert set(summary["phases"]["build"]) == {"total_s", "count"}

    def test_merge_through_shim(self):
        parent, worker = PhaseTimer(), PhaseTimer()
        worker.incr("points", 7)
        worker.record("sweep", 0.25)
        parent.merge(worker.summary())
        assert parent.counter("points") == 7
        assert parent.summary()["phases"]["sweep"]["count"] == 1

    def test_write_json_creates_dirs_and_utf8(self, tmp_path):
        timer = PhaseTimer()
        timer.incr("runs")
        path = tmp_path / "deep" / "nested" / "profile.json"
        payload = timer.write_json(str(path), extra={"note": "µ-bench ≤1"})
        assert payload["note"] == "µ-bench ≤1"
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["note"] == "µ-bench ≤1"
        assert on_disk["counters"] == {"runs": 1}


class TestPrometheusExposition:
    def test_counter_gauge_and_labels(self, registry):
        registry.incr("sweeps", 3, labels={"engine": "batch"})
        registry.gauge("last_run_total_cost", 120.5)
        text = prometheus_text(registry)
        assert '# TYPE repro_sweeps_total counter' in text
        assert 'repro_sweeps_total{engine="batch"} 3' in text
        assert '# TYPE repro_last_run_total_cost gauge' in text
        assert 'repro_last_run_total_cost 120.5' in text
        assert text.endswith("\n")

    def test_histogram_triple(self, registry):
        registry.observe("charge", 5.0, buckets=(1.0, 10.0))
        registry.observe("charge", 50.0, buckets=(1.0, 10.0))
        text = prometheus_text(registry)
        assert '# TYPE repro_charge histogram' in text
        assert 'repro_charge_bucket{le="1"} 0' in text
        assert 'repro_charge_bucket{le="10"} 1' in text
        assert 'repro_charge_bucket{le="+Inf"} 2' in text
        assert 'repro_charge_sum 55' in text
        assert 'repro_charge_count 2' in text

    def test_bucket_counts_monotone_and_inf_equals_count(self, registry):
        for value in (0.1, 2.0, 7.0, 1e12):
            registry.observe("spread", value)
        lines = prometheus_text(registry).splitlines()
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines
                  if line.startswith("repro_spread_bucket")]
        assert counts == sorted(counts)
        count_line = next(line for line in lines
                          if line.startswith("repro_spread_count"))
        assert counts[-1] == int(count_line.rsplit(" ", 1)[1])

    def test_phases_export_as_labelled_counters(self, registry):
        registry.record_phase("parallel_sweep", 2.5)
        text = prometheus_text(registry)
        assert ('repro_phase_seconds_total{phase="parallel_sweep"} 2.5'
                in text)
        assert 'repro_phase_runs_total{phase="parallel_sweep"} 1' in text

    def test_type_header_precedes_samples(self, registry):
        registry.incr("a_counter")
        registry.gauge("b_gauge", 1)
        lines = prometheus_text(registry).splitlines()
        seen_types = set()
        for line in lines:
            if line.startswith("# TYPE"):
                seen_types.add(line.split()[2])
            elif not line.startswith("#") and line:
                family = line.split("{")[0].split(" ")[0]
                assert family in seen_types, line

    def test_names_and_label_values_sanitized(self, registry):
        registry.incr("cache.load-time", labels={"key": 'a"b\nc'})
        text = prometheus_text(registry)
        assert "repro_cache_load_time_total" in text
        assert '\\"' in text and "\\n" in text

    def test_empty_registry_renders(self, registry):
        assert prometheus_text(registry) == "\n"

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("ess-cache.hits") == "ess_cache_hits"
        assert sanitize_metric_name("9lives").startswith("_")


class TestThreadSafety:
    """The registry is hammered from executor threads in the serving
    path (worker summaries merge concurrently with request-path incr/
    observe); every mutation must survive the interleaving exactly."""

    def test_concurrent_incr_observe_merge_is_exact(self):
        import threading

        donor = MetricsRegistry()
        donor.incr("hits")
        donor.incr("labelled", 2, labels={"tenant": "a"})
        donor.observe("latency", 0.25, buckets=(0.5, 1.0))
        donor.record_phase("work", 0.001)
        snapshot = donor.summary()

        registry = MetricsRegistry()
        rounds = 300

        def direct():
            for _ in range(rounds):
                registry.incr("hits")
                registry.incr("labelled", 2, labels={"tenant": "a"})
                registry.observe("latency", 0.25, buckets=(0.5, 1.0))
                registry.record_phase("work", 0.001)

        def merger():
            for _ in range(rounds):
                registry.merge(snapshot)

        threads = [threading.Thread(target=direct) for _ in range(3)]
        threads += [threading.Thread(target=merger) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = 6 * rounds  # every thread lands `rounds` of everything
        assert registry.counter("hits") == total
        assert registry.counter("labelled", labels={"tenant": "a"}) \
            == 2 * total
        summary = registry.summary()
        assert summary["histograms"]["latency"]["count"] == total
        assert summary["histograms"]["latency"]["counts"][-1] == total
        assert summary["phases"]["work"]["count"] == total
