"""Tests for the span tracer (repro.obs.trace) and its JSONL format.

The differential tests at the bottom are the load-bearing ones: they
prove that installing a tracer does not perturb a single discovery run
or a full sweep — same executions, same charges, bit-identical
sub-optimality arrays.
"""

import threading

import numpy as np
import pytest

from repro.core.mso import evaluate_algorithm
from repro.obs import trace
from repro.obs.export import read_trace_jsonl, write_trace_jsonl


@pytest.fixture
def scoped_tracer():
    """Install a fresh tracer for one test, always restoring the
    previous global (usually None: tracing disabled)."""
    tracer = trace.Tracer()
    previous = trace.install_tracer(tracer)
    yield tracer
    trace.install_tracer(previous)


class TestSpanStructure:
    def test_nesting_builds_parent_links(self, scoped_tracer):
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with trace.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id == ""
        names = [s.name for s in scoped_tracer.spans]
        # Completion order: children close before their parent.
        assert names == ["inner", "sibling", "outer"]

    def test_span_ids_unique_and_trace_id_shared(self, scoped_tracer):
        for _ in range(5):
            with trace.span("op"):
                pass
        ids = [s.span_id for s in scoped_tracer.spans]
        assert len(set(ids)) == len(ids)
        assert {s.trace_id for s in scoped_tracer.spans} == {
            scoped_tracer.trace_id
        }

    def test_attrs_and_set_attr(self, scoped_tracer):
        with trace.span("op", engine="batch", points=100) as s:
            s.set_attr("engine_used", "loop")
        record = scoped_tracer.spans[0]
        assert record.attrs == {
            "engine": "batch", "points": 100, "engine_used": "loop",
        }

    def test_timestamps_are_monotonic(self, scoped_tracer):
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        inner, outer = scoped_tracer.spans
        assert inner.end_ns >= inner.start_ns
        assert outer.start_ns <= inner.start_ns
        assert outer.end_ns >= inner.end_ns
        assert outer.duration_ns >= inner.duration_ns

    def test_exception_marks_span_and_propagates(self, scoped_tracer):
        with pytest.raises(ValueError):
            with trace.span("doomed"):
                raise ValueError("boom")
        assert scoped_tracer.spans[0].attrs["error"] == "ValueError"

    def test_current_span(self, scoped_tracer):
        assert trace.current_span() is None
        with trace.span("op") as s:
            assert trace.current_span() is s
        assert trace.current_span() is None

    def test_threads_get_independent_stacks(self, scoped_tracer):
        seen = {}

        def worker():
            with trace.span("thread-op") as s:
                seen["parent"] = s.parent_id

        with trace.span("main-op"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker's span must not become a child of the main
        # thread's active span.
        assert seen["parent"] == ""

    def test_max_spans_bound_drops_not_grows(self):
        tracer = trace.Tracer(max_spans=3)
        previous = trace.install_tracer(tracer)
        try:
            for _ in range(5):
                with trace.span("op"):
                    pass
        finally:
            trace.install_tracer(previous)
        assert len(tracer.spans) == 3
        assert tracer.dropped == 2
        assert tracer.meta()["dropped"] == 2


class TestDisabledPath:
    def test_span_is_shared_noop_singleton(self):
        previous = trace.install_tracer(None)
        try:
            assert not trace.enabled()
            s = trace.span("anything", key="value")
            assert s is trace.NOOP_SPAN
            with s as inner:
                inner.set_attr("ignored", 1)  # must not raise
            assert trace.current_span() is None
        finally:
            trace.install_tracer(previous)

    def test_install_returns_previous(self):
        first = trace.Tracer()
        original = trace.install_tracer(first)
        try:
            second = trace.Tracer()
            assert trace.install_tracer(second) is first
            assert trace.active_tracer() is second
        finally:
            trace.install_tracer(original)

    def test_env_gate_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not trace.trace_enabled_by_env()
        for value in ("1", "true", "ON", "yes"):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert trace.trace_enabled_by_env()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not trace.trace_enabled_by_env()


class TestJsonlRoundTrip:
    def test_round_trip_preserves_spans(self, scoped_tracer, tmp_path):
        with trace.span("outer", engine="batch"):
            with trace.span("inner", points=7):
                pass
        path = tmp_path / "nested" / "dir" / "t.jsonl"
        write_trace_jsonl(scoped_tracer, str(path))
        meta, spans = read_trace_jsonl(str(path))
        assert meta["schema"] == trace.TRACE_SCHEMA
        assert meta["trace_id"] == scoped_tracer.trace_id
        assert meta["spans"] == 2 and meta["dropped"] == 0
        assert [s["name"] for s in spans] == ["inner", "outer"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["attrs"] == {"points": 7}
        for record in spans:
            assert record["kind"] == "span"
            assert record["end_ns"] >= record["start_ns"]

    def test_numpy_attrs_serialize(self, scoped_tracer, tmp_path):
        with trace.span("op", count=np.int64(3), sel=np.float64(0.5)):
            pass
        path = tmp_path / "np.jsonl"
        write_trace_jsonl(scoped_tracer, str(path))
        _, spans = read_trace_jsonl(str(path))
        assert spans[0]["attrs"] == {"count": 3, "sel": 0.5}


class TestTracingIsInert:
    """Tracing on vs off must not change any computed result."""

    def test_single_run_identical(self, toy_sb):
        baseline = toy_sb.run(150, trace=True)
        tracer = trace.Tracer()
        previous = trace.install_tracer(tracer)
        try:
            traced = toy_sb.run(150, trace=True)
        finally:
            trace.install_tracer(previous)
        assert traced.total_cost == baseline.total_cost
        assert traced.suboptimality == baseline.suboptimality
        assert traced.contours_visited == baseline.contours_visited
        assert len(traced.executions) == len(baseline.executions)
        for a, b in zip(traced.executions, baseline.executions):
            assert (a.contour, a.mode, a.plan_id, a.charged) == (
                b.contour, b.mode, b.plan_id, b.charged)

    @pytest.mark.parametrize("engine", ["loop", "batch"])
    def test_sweep_bit_identical(self, toy_sb, engine):
        baseline = evaluate_algorithm(toy_sb, engine=engine)
        tracer = trace.Tracer()
        previous = trace.install_tracer(tracer)
        try:
            traced = evaluate_algorithm(toy_sb, engine=engine)
        finally:
            trace.install_tracer(previous)
        assert np.array_equal(baseline.suboptimality, traced.suboptimality)
        assert baseline.mso == traced.mso
        assert baseline.worst_location == traced.worst_location
        # The traced sweep actually produced spans — the comparison
        # above exercised the enabled path, not a silent no-op.
        assert any(s.name == "sweep.evaluate" for s in tracer.spans)
