"""Tests for run-level telemetry (repro.obs.runtrace) and the
budget-waterfall viewer (repro.obs.waterfall)."""

import math

import pytest

from repro.core.discovery import NORMAL, SPILL
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtrace import (
    OUTCOME_BUDGET_KILL,
    OUTCOME_COMPLETED,
    OUTCOME_SPILL_LEARNED,
    OUTCOMES,
    classify_outcome,
    publish_run_metrics,
    run_records,
    traced_run,
)
from repro.obs.waterfall import (
    MAX_ROWS,
    OUTCOME_COLORS,
    waterfall_html,
    waterfall_svg,
    write_waterfall_html,
)


def synthetic_rows(n=3):
    """Hand-built waterfall rows for pure-render tests."""
    rows = []
    cumulative = 0.0
    outcomes = [OUTCOME_BUDGET_KILL, OUTCOME_SPILL_LEARNED,
                OUTCOME_COMPLETED]
    for i in range(n):
        budget = 100.0 * 2 ** i
        charged = budget if i % 3 == 0 else budget * 0.7
        start = cumulative
        cumulative += charged
        rows.append({
            "index": i, "contour": i // 2, "plan_id": i, "plan_key": f"p{i}",
            "mode": SPILL if i % 3 == 1 else NORMAL,
            "epp": "j:a-b" if i % 3 == 1 else "",
            "budget": budget, "charged": charged,
            "completed": i % 3 != 0, "outcome": outcomes[i % 3],
            "cost_start": start, "cost_end": cumulative,
            "learned_selectivity": 1e-4 if i % 3 == 1 else None,
            "fresh": True, "penalty": 0.0,
        })
    return rows


class TestClassifyOutcome:
    def test_paper_semantics(self):
        assert classify_outcome(NORMAL, True) == OUTCOME_COMPLETED
        assert classify_outcome(SPILL, True) == OUTCOME_SPILL_LEARNED
        assert classify_outcome(NORMAL, False) == OUTCOME_BUDGET_KILL
        assert classify_outcome(SPILL, False) == OUTCOME_BUDGET_KILL

    def test_every_outcome_has_a_color(self):
        assert set(OUTCOME_COLORS) == set(OUTCOMES)


class TestRunRecords:
    def test_cost_timeline_is_cumulative(self, toy_sb):
        result = toy_sb.run(150, trace=True)
        rows = run_records(result, toy_sb.ess.query)
        assert len(rows) == result.num_executions
        cumulative = 0.0
        for row in rows:
            assert row["cost_start"] == pytest.approx(cumulative)
            cumulative += row["charged"]
            assert row["cost_end"] == pytest.approx(cumulative)
        assert rows[-1]["cost_end"] == pytest.approx(result.total_cost)

    def test_outcomes_and_epp_labels(self, toy_sb):
        result = toy_sb.run(150, trace=True)
        rows = run_records(result, toy_sb.ess.query)
        assert all(row["outcome"] in OUTCOMES for row in rows)
        epp_names = {e.name for e in toy_sb.ess.query.epps}
        for row in rows:
            if row["mode"] == SPILL:
                assert row["epp"] in epp_names
        learned = [row["learned_selectivity"] for row in rows
                   if row["learned_selectivity"] is not None]
        for sel in learned:
            assert not math.isnan(sel)

    def test_untraced_result_yields_no_rows(self, toy_sb):
        result = toy_sb.run(150, trace=False)
        assert run_records(result) == []

    def test_discovery_result_waterfall_rows_method(self, toy_sb):
        result = toy_sb.run(150, trace=True)
        assert result.waterfall_rows(toy_sb.ess.query) == run_records(
            result, toy_sb.ess.query)


class TestPublishRunMetrics:
    def test_run_semantics_land_in_registry(self, toy_sb):
        registry = MetricsRegistry()
        result = toy_sb.run(150, trace=True)
        rows = run_records(result, toy_sb.ess.query)
        publish_run_metrics(result, rows, algorithm="sb", registry=registry)

        labels = {"algorithm": "sb"}
        assert registry.counter("discovery_runs", labels=labels) == 1
        assert registry.counter(
            "contours_crossed", labels=labels) == result.contours_visited
        assert registry.counter(
            "discovery_executions", labels=labels) == result.num_executions
        kills = sum(r["outcome"] == OUTCOME_BUDGET_KILL for r in rows)
        assert registry.counter("budget_kills", labels=labels) == kills
        spill_total = sum(
            registry.counter("spill_executions", labels={"epp": e.name})
            for e in toy_sb.ess.query.epps
        )
        assert spill_total == sum(r["mode"] == SPILL for r in rows)
        assert registry.gauge_value(
            "last_run_total_cost") == pytest.approx(result.total_cost)
        summary = registry.summary()
        assert summary["histograms"]["run_suboptimality"]["count"] == 1
        if kills:
            assert summary["histograms"]["budget_kill_charge"][
                "count"] == kills

    def test_traced_run_emits_run_and_marker_spans(self, toy_sb):
        registry = MetricsRegistry()
        tracer = trace.Tracer()
        previous = trace.install_tracer(tracer)
        try:
            result, rows = traced_run(toy_sb, 150, name="sb",
                                      registry=registry)
        finally:
            trace.install_tracer(previous)
        assert rows == run_records(result, toy_sb.ess.query)
        run_spans = [s for s in tracer.spans if s.name == "discovery.run"]
        assert len(run_spans) == 1
        assert run_spans[0].attrs["suboptimality"] == result.suboptimality
        markers = [s for s in tracer.spans
                   if s.name == "discovery.execution"]
        assert len(markers) == len(rows)
        assert all(m.parent_id == run_spans[0].span_id for m in markers)
        assert [m.attrs["outcome"] for m in markers] == [
            r["outcome"] for r in rows]


class TestWaterfallSvg:
    def test_rows_render_with_outcome_colors(self):
        rows = synthetic_rows(4)
        svg = waterfall_svg(rows, title="test waterfall")
        assert svg.startswith("<svg")
        assert "test waterfall" in svg
        for outcome in OUTCOMES:
            assert outcome in svg
            assert OUTCOME_COLORS[outcome] in svg
        assert "charged cost (log)" in svg
        assert "IC0 normal" in svg
        assert "<title>" in svg  # tooltips ride inside the bar groups

    def test_empty_rows_still_render(self):
        svg = waterfall_svg([])
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")

    def test_overflow_rows_summarised(self):
        rows = synthetic_rows(MAX_ROWS + 25)
        svg = waterfall_svg(rows)
        assert "25 more executions" in svg

    def test_real_run_renders(self, toy_sb):
        result = toy_sb.run(150, trace=True)
        rows = result.waterfall_rows(toy_sb.ess.query)
        svg = waterfall_svg(rows, subtitle="toy run")
        assert svg.count("<title>") == len(rows)


class TestWaterfallHtml:
    def test_self_contained_document(self):
        rows = synthetic_rows(3)
        meta = {"query": "2D_Q42", "algorithm": "sb",
                "suboptimality": 5.1234}
        html = waterfall_html(rows, meta=meta, title="run 42")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "2D_Q42" in html and "sb" in html
        assert "sub-optimality 5.12" in html
        # One table row per execution, plus the header row.
        assert html.count("<tr>") == len(rows) + 1 + len(meta)
        assert "p0" in html and "j:a-b" in html

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "run.html"
        written = write_waterfall_html(str(path), synthetic_rows(2),
                                       meta={"query": "q"})
        assert written == str(path)
        text = path.read_text(encoding="utf-8")
        assert "</html>" in text
