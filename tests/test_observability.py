"""Tests for end-to-end request observability (PR 10).

Covers the cross-process trace plumbing (TraceContext wire format,
child tracers, span splicing, drop accounting), exposition determinism
(canonical label ordering, opt-in exemplars), the merged-trace checker
and perf-regression sentinel, and — against a real server — trace
spooling, tracing-on/off bit-identity, the live dashboard, concurrent
scrapes under load, and the structured audit log.
"""

import json
import os
import threading
import time
import warnings

import numpy as np
import pytest

from repro.bench import workloads
from repro.bench.sentinel import (
    DEFAULT_RULES,
    SENTINEL_SCHEMA,
    evaluate_sentinel,
    load_baselines,
    render_sentinel,
    run_sentinel,
)
from repro.core.mso import evaluate_algorithm
from repro.core.spill_bound import SpillBound
from repro.obs import trace
from repro.obs.export import prometheus_text, read_trace_jsonl
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.serve.dashboard import (
    AUDIT_SCHEMA,
    AuditLog,
    DashboardState,
    render_dashboard_html,
)
from repro.serve.loadgen import (
    ServeClient,
    ServerThread,
    _await_trace_file,
    check_merged_trace,
    run_loadgen,
    solo_result,
)
from repro.serve.server import ServeConfig


@pytest.fixture
def serve_env(tmp_path, monkeypatch):
    """Fresh archive cache + cold workload memo for one server test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serve-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    workloads.clear_cache()
    yield
    workloads.clear_cache()


def start_server(**overrides):
    overrides.setdefault("profile", "smoke")
    overrides.setdefault("ess_mode", "eager")
    overrides.setdefault("workers", 2)
    thread = ServerThread(ServeConfig.from_env(**overrides))
    thread.start()
    return thread


# ----------------------------------------------------------------------
# TraceContext + cross-process plumbing
# ----------------------------------------------------------------------


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = trace.TraceContext("ab" * 8, parent_span_id="cd" * 4,
                                 anchor_unix_ns=123)
        wire = ctx.to_wire()
        assert wire == {"trace_id": "ab" * 8, "parent_span_id": "cd" * 4,
                        "anchor_unix_ns": 123}
        back = trace.TraceContext.from_wire(json.loads(json.dumps(wire)))
        assert back.trace_id == ctx.trace_id
        assert back.parent_span_id == ctx.parent_span_id
        assert back.anchor_unix_ns == 123

    def test_from_wire_none_and_passthrough(self):
        assert trace.TraceContext.from_wire(None) is None
        ctx = trace.TraceContext("ff" * 8)
        assert trace.TraceContext.from_wire(ctx) is ctx
        assert trace.child_tracer(None) is None

    def test_context_parents_on_active_span(self):
        tracer = trace.Tracer()
        with tracer.span("outer") as outer:
            ctx = tracer.context()
            assert ctx.trace_id == tracer.trace_id
            assert ctx.parent_span_id == outer.span_id
            assert ctx.anchor_unix_ns > 0
        # With no span open, the tracer's own parent is used.
        assert tracer.context().parent_span_id == tracer.parent_span_id

    def test_child_tracer_joins_and_splices_home(self):
        parent = trace.Tracer()
        with parent.span("parent.work"):
            wire = parent.context().to_wire()
        child = trace.child_tracer(wire)
        assert child.trace_id == parent.trace_id
        with child.span("child.work"):
            pass
        records = [s.to_record() for s in child.spans]
        assert parent.splice(records) == 1
        names = {s.name for s in parent.spans}
        assert names == {"parent.work", "child.work"}
        spliced = next(s for s in parent.spans if s.name == "child.work")
        assert spliced.parent_id == parent.spans[0].span_id
        assert spliced.time_unix_ns is not None

    def test_splice_rejects_foreign_trace_ids(self):
        parent = trace.Tracer()
        stranger = trace.Tracer()
        with stranger.span("noise"):
            pass
        records = [s.to_record() for s in stranger.spans]
        assert parent.splice(records) == 0
        assert parent.spans == []

    def test_span_id_prefixes_differ_across_tracers(self):
        # Two tracers joined to the same trace (as two worker processes
        # would be) must not mint colliding span ids.
        a = trace.Tracer(trace_id="aa" * 8)
        b = trace.Tracer(trace_id="aa" * 8)
        with a.span("x"):
            pass
        with b.span("x"):
            pass
        assert a.spans[0].span_id != b.spans[0].span_id


class TestDropAccounting:
    def test_drop_counter_and_one_time_warning(self, monkeypatch):
        monkeypatch.setattr(trace, "_WARNED_DROP", False)
        before = REGISTRY.counter("trace_spans_dropped")
        tracer = trace.Tracer(max_spans=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):
                with tracer.span("s"):
                    pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        assert REGISTRY.counter("trace_spans_dropped") - before == 3
        rung = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(rung) == 1  # once per process, not once per drop
        assert "repro_trace_spans_dropped_total" in str(rung[0].message)
        assert tracer.meta()["dropped"] == 3

    def test_dropped_total_appears_in_exposition(self):
        registry = MetricsRegistry()
        registry.incr("trace_spans_dropped", 7)
        text = prometheus_text(registry)
        assert "repro_trace_spans_dropped_total 7" in text


class TestParallelSweepPropagation:
    @pytest.fixture
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ess-cache"))
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        workloads.clear_cache()
        yield
        workloads.clear_cache()

    def test_sweep_worker_spans_splice_into_parent(self, isolated_cache,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        tracer = trace.Tracer()
        previous = trace.install_tracer(tracer)
        try:
            instance = workloads.load("2D_Q91", profile="smoke")
            parallel = evaluate_algorithm(
                SpillBound(instance.ess, instance.contours),
                workers=2, engine="parallel",
            )
        finally:
            trace.install_tracer(previous)
        serial = evaluate_algorithm(
            SpillBound(instance.ess, instance.contours), engine="loop")
        assert np.array_equal(serial.suboptimality, parallel.suboptimality)

        names = [s.name for s in tracer.spans]
        assert "sweep.parallel" in names
        workers = [s for s in tracer.spans if s.name == "sweep.worker"]
        assert workers, "no sweep.worker spans shipped home"
        parent_ids = {s.span_id for s in tracer.spans
                      if s.name == "sweep.parallel"}
        assert all(s.parent_id in parent_ids for s in workers)
        assert all(s.trace_id == tracer.trace_id for s in workers)
        assert all(s.time_unix_ns is not None for s in workers)
        worker_pids = {s.attrs.get("pid") for s in workers}
        assert os.getpid() not in worker_pids


# ----------------------------------------------------------------------
# Exposition determinism
# ----------------------------------------------------------------------


class TestCanonicalLabels:
    def test_brace_form_and_labels_kwarg_share_a_series(self):
        registry = MetricsRegistry()
        registry.incr("spills{epp=e1,tier=hot}")
        registry.incr("spills", labels={"tier": "hot", "epp": "e1"})
        assert registry.counter(
            "spills", labels={"epp": "e1", "tier": "hot"}) == 2

    def test_exposition_is_insertion_order_independent(self):
        first = MetricsRegistry()
        first.incr("requests", labels={"outcome": "ok", "tenant": "a"})
        first.incr("requests", labels={"tenant": "b", "outcome": "ok"})
        second = MetricsRegistry()
        second.incr("requests", labels={"tenant": "b", "outcome": "ok"})
        second.incr("requests", labels={"outcome": "ok", "tenant": "a"})
        assert prometheus_text(first) == prometheus_text(second)

    def test_merge_after_flattening_stays_byte_identical(self):
        # The worker->parent summary path flattens labels into brace
        # names; merging must land on the same canonical series.
        worker = MetricsRegistry()
        worker.incr("requests", labels={"tenant": "a", "outcome": "ok"})
        parent = MetricsRegistry()
        parent.incr("requests", labels={"outcome": "ok", "tenant": "a"})
        merged = MetricsRegistry()
        merged.merge(worker.summary())
        assert prometheus_text(merged) == prometheus_text(parent)

    def test_label_keys_render_sorted(self):
        registry = MetricsRegistry()
        registry.incr("requests", labels={"z": "1", "a": "2"})
        text = prometheus_text(registry)
        assert 'repro_requests_total{a="2",z="1"} 1' in text


class TestExemplars:
    def _registry(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.5, exemplar={"trace_id": "ab12"})
        return registry

    def test_default_exposition_has_no_exemplars(self):
        text = prometheus_text(self._registry())
        assert "ab12" not in text
        for line in text.splitlines():
            if not line.startswith("#"):
                assert " # " not in line

    def test_opt_in_exemplar_lands_on_inf_bucket_only(self):
        text = prometheus_text(self._registry(), exemplars=True)
        tagged = [line for line in text.splitlines() if " # " in line]
        assert len(tagged) == 1
        assert 'le="+Inf"' in tagged[0]
        assert 'trace_id="ab12"' in tagged[0]


# ----------------------------------------------------------------------
# Merged-trace checker
# ----------------------------------------------------------------------


def _span(trace_id, span_id, parent_id, name, t, pid):
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "time_unix_ns": t,
        "start_ns": t,
        "end_ns": t + 10,
        "attrs": {"pid": pid},
    }


class TestCheckMergedTrace:
    def _good(self):
        tid = "aa" * 8
        return {"kind": "meta", "trace_id": tid, "schema": "repro.trace.v1"}, [
            _span(tid, "s1", "", "serve.request", 100, 10),
            _span(tid, "s2", "s1", "serve.dispatch", 110, 10),
            _span(tid, "s3", "s2", "serve.worker.discover", 120, 20),
            _span(tid, "s4", "s3", "sweep.worker", 130, 30),
            _span(tid, "s5", "s3", "sweep.worker", 140, 31),
        ]

    def test_good_trace_passes_every_gate(self):
        meta, spans = self._good()
        verdict = check_merged_trace(meta, spans)
        assert verdict["ok"]
        assert verdict["single_trace_id"]
        assert verdict["multi_process"]
        assert verdict["has_request_root"]
        assert verdict["has_pool_worker_spans"]
        assert verdict["has_sweep_worker_spans"]
        assert verdict["wall_ordered"]
        assert verdict["spans"] == 5
        assert len(verdict["pids"]) == 4

    def test_foreign_trace_id_fails(self):
        meta, spans = self._good()
        spans[-1]["trace_id"] = "bb" * 8
        assert not check_merged_trace(meta, spans)["single_trace_id"]
        assert not check_merged_trace(meta, spans)["ok"]

    def test_single_process_fails_multi_process_gate(self):
        meta, spans = self._good()
        for span in spans:
            span["attrs"]["pid"] = 10
        verdict = check_merged_trace(meta, spans)
        assert not verdict["multi_process"]
        assert not verdict["ok"]

    def test_missing_request_root_fails(self):
        meta, spans = self._good()
        spans[0]["name"] = "other.root"
        assert not check_merged_trace(meta, spans)["has_request_root"]


# ----------------------------------------------------------------------
# Perf-regression sentinel
# ----------------------------------------------------------------------


def _payload(rps=100.0, p99=0.05, overhead=0.3):
    return {
        "schema_version": 9,
        "serving": {"loadgen": {"rps": rps, "latency_s": {"p99": p99}}},
        "observability": {"overhead_pct": overhead},
    }


class TestSentinel:
    def test_ok_within_bands(self):
        baselines = [(9, "BENCH_pr9.json", _payload())]
        verdict = evaluate_sentinel(_payload(rps=60.0), baselines)
        assert verdict["schema"] == SENTINEL_SCHEMA
        assert verdict["ok"]
        assert verdict["regressions"] == 0
        assert verdict["checked"] == 3

    def test_throughput_collapse_regresses(self):
        baselines = [(9, "BENCH_pr9.json", _payload(rps=100.0))]
        verdict = evaluate_sentinel(_payload(rps=2.0), baselines)
        assert not verdict["ok"]
        check = next(c for c in verdict["checks"]
                     if c["metric"] == "serving_rps")
        assert check["status"] == "regression"
        assert check["rule"] == "higher_better"
        assert check["limit"] == pytest.approx(25.0)

    def test_latency_explosion_regresses(self):
        baselines = [(9, "BENCH_pr9.json", _payload(p99=0.05))]
        verdict = evaluate_sentinel(_payload(p99=0.5), baselines)
        check = next(c for c in verdict["checks"]
                     if c["metric"] == "serving_p99")
        assert check["status"] == "regression"
        assert check["rule"] == "lower_better"

    def test_pct_ceiling_judges_without_baseline(self):
        verdict = evaluate_sentinel(_payload(overhead=50.0), [])
        check = next(c for c in verdict["checks"]
                     if c["metric"] == "observability_overhead")
        assert check["status"] == "regression"
        assert check["baseline"] is None
        ok = evaluate_sentinel(_payload(overhead=1.0), [])
        assert next(c for c in ok["checks"]
                    if c["metric"] == "observability_overhead"
                    )["status"] == "ok"

    def test_absent_metric_skips_never_fails(self):
        baselines = [(9, "BENCH_pr9.json", _payload())]
        verdict = evaluate_sentinel({"schema_version": 9}, baselines)
        assert verdict["ok"]
        assert verdict["checked"] == 0
        assert all(c["status"] == "skipped" for c in verdict["checks"])

    def test_ratio_rules_skip_without_baseline(self):
        verdict = evaluate_sentinel(_payload(rps=0.001), [])
        check = next(c for c in verdict["checks"]
                     if c["metric"] == "serving_rps")
        assert check["status"] == "skipped"
        assert check["reason"] == "no committed baseline"

    def test_newest_baseline_wins(self):
        baselines = [
            (3, "BENCH_pr3.json", _payload(rps=1000.0)),
            (9, "BENCH_pr9.json", _payload(rps=10.0)),
        ]
        verdict = evaluate_sentinel(_payload(rps=5.0), baselines)
        check = next(c for c in verdict["checks"]
                     if c["metric"] == "serving_rps")
        assert check["baseline_pr"] == 9
        assert check["status"] == "ok"

    def test_load_baselines_excludes_current_artifact(self, tmp_path):
        for pr in (1, 2):
            path = tmp_path / f"BENCH_pr{pr}.json"
            path.write_text(json.dumps(_payload()), encoding="utf-8")
        (tmp_path / "notes.json").write_text("{}", encoding="utf-8")
        baselines = load_baselines(str(tmp_path))
        assert [b[0] for b in baselines] == [1, 2]
        trimmed = load_baselines(str(tmp_path),
                                 exclude=str(tmp_path / "BENCH_pr2.json"))
        assert [b[0] for b in trimmed] == [1]

    def test_run_sentinel_reads_path_and_self_excludes(self, tmp_path):
        baseline = tmp_path / "BENCH_pr1.json"
        baseline.write_text(json.dumps(_payload(rps=100.0)),
                            encoding="utf-8")
        current = tmp_path / "BENCH_pr2.json"
        current.write_text(json.dumps(_payload(rps=2.0)), encoding="utf-8")
        verdict = run_sentinel(str(current), directory=str(tmp_path))
        assert not verdict["ok"]
        assert [b["pr"] for b in verdict["baselines"]] == [1]

    def test_render_summary_lines(self):
        baselines = [(9, "BENCH_pr9.json", _payload())]
        ok_text = render_sentinel(evaluate_sentinel(_payload(), baselines))
        assert "sentinel: OK" in ok_text
        bad_text = render_sentinel(
            evaluate_sentinel(_payload(rps=0.1), baselines))
        assert "sentinel: REGRESSION" in bad_text
        assert "REGRESSION — 1 of" in bad_text

    def test_committed_repo_baselines_pass(self):
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        baselines = load_baselines(repo)
        if not baselines:
            pytest.skip("no committed BENCH artifacts")
        # The newest committed artifact judged against the rest must be
        # green — otherwise the CI sentinel gate is broken at HEAD.
        newest = baselines[-1]
        verdict = evaluate_sentinel(
            newest[2], [b for b in baselines if b[0] != newest[0]])
        assert verdict["ok"], render_sentinel(verdict)

    def test_default_rules_cover_every_ledger_metric(self):
        from repro.bench.trajectory import _METRICS

        assert set(DEFAULT_RULES) == {key for key, _label, _fn in _METRICS}


# ----------------------------------------------------------------------
# Dashboard + audit log units
# ----------------------------------------------------------------------


class TestDashboardState:
    def test_ring_is_bounded(self):
        state = DashboardState(capacity=3)
        for i in range(5):
            state.record(outcome="ok", total_s=0.01, seq=i)
        events = state.snapshot()
        assert len(events) == 3
        assert [e["seq"] for e in events] == [2, 3, 4]
        assert all("ts" in e for e in events)

    def test_render_empty_state(self):
        # No events yet: still a complete page (charts appear once the
        # ring has data).
        html = render_dashboard_html(DashboardState(), MetricsRegistry(),
                                     {"status": "ok"})
        assert html.startswith("<!DOCTYPE html>") and "</html>" in html

    def test_render_with_events(self):
        state = DashboardState()
        registry = MetricsRegistry()
        now = time.time()
        for i in range(20):
            state.record(outcome="ok" if i % 3 else "rejected",
                         total_s=0.02 + 0.001 * i, ts=now - i,
                         build_s=0.001, queue_s=0.002, run_s=0.01,
                         source="memo" if i % 2 else "built",
                         violations=0, inflight=i % 4)
        html = render_dashboard_html(state, registry,
                                     {"status": "ok", "inflight": 2},
                                     now=now)
        assert "<svg" in html
        assert "p99" in html


class TestAuditLog:
    def _read(self, path):
        with open(path, encoding="utf-8") as handle:
            return [json.loads(line) for line in handle]

    def test_slow_requests_always_recorded(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl", threshold_s=0.05)
        assert not log.maybe_record({"total_s": 0.01, "query": "q"})
        assert log.maybe_record({"total_s": 0.2, "query": "q"})
        records = self._read(log.path)
        assert len(records) == 1
        assert records[0]["schema"] == AUDIT_SCHEMA
        assert records[0]["slow"] is True
        assert "ts" in records[0]

    def test_every_nth_sampling(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl", threshold_s=10.0, every=3)
        written = [log.maybe_record({"total_s": 0.0, "seq": i})
                   for i in range(9)]
        assert sum(written) == 3
        records = self._read(log.path)
        assert all(r["slow"] is False for r in records)

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_AUDIT", raising=False)
        assert AuditLog.from_env() is None
        monkeypatch.setenv("REPRO_SERVE_AUDIT",
                           str(tmp_path / "a.jsonl"))
        monkeypatch.setenv("REPRO_SERVE_AUDIT_THRESHOLD_S", "0.25")
        monkeypatch.setenv("REPRO_SERVE_AUDIT_SAMPLE", "5")
        log = AuditLog.from_env()
        assert log.threshold_s == 0.25
        assert log.every == 5


# ----------------------------------------------------------------------
# Server-backed: spooled traces, bit-identity, dashboard, audit
# ----------------------------------------------------------------------


class TestServeTracing:
    def test_traced_request_spools_a_merged_tree(self, serve_env, tmp_path):
        trace_dir = str(tmp_path / "traces")
        server = start_server(trace_dir=trace_dir)
        try:
            client = ServeClient(*server.address)
            try:
                status, traced = client.discover(
                    {"query": "2D_Q91", "kind": "evaluate", "trace": True})
                assert status == 200 and traced["outcome"] == "ok"
                assert traced["trace_id"]
                status, untraced = client.discover(
                    {"query": "2D_Q91", "kind": "evaluate"})
                assert status == 200
                assert "trace_id" not in untraced
            finally:
                client.close()

            path = _await_trace_file(trace_dir, traced["trace_id"])
            meta, spans = read_trace_jsonl(path)
            assert meta["trace_id"] == traced["trace_id"]
            names = [s["name"] for s in spans]
            assert "serve.request" in names
            assert any(n.startswith("serve.worker.") for n in names)
            pids = {s.get("attrs", {}).get("pid") for s in spans
                    if s.get("attrs", {}).get("pid") is not None}
            assert len(pids) >= 2  # front-end + pool worker
            assert {s["trace_id"] for s in spans} == {traced["trace_id"]}

            # Differential: tracing must not perturb results.
            assert (json.dumps(traced["result"], sort_keys=True)
                    == json.dumps(untraced["result"], sort_keys=True))
        finally:
            server.stop()

    def test_traced_run_matches_solo_bit_identically(self, serve_env):
        server = start_server()
        try:
            client = ServeClient(*server.address)
            try:
                status, traced = client.discover(
                    {"query": "2D_Q91", "trace": True})
                assert status == 200
                status, untraced = client.discover({"query": "2D_Q91"})
                assert status == 200
            finally:
                client.close()
        finally:
            server.stop()
        solo = solo_result("2D_Q91", profile="smoke")
        canon = json.dumps(solo, sort_keys=True)
        assert json.dumps(traced["result"], sort_keys=True) == canon
        assert json.dumps(untraced["result"], sort_keys=True) == canon

    def test_loadgen_trace_every_marks_and_counts(self, serve_env,
                                                  tmp_path):
        trace_dir = str(tmp_path / "traces")
        server = start_server(trace_dir=trace_dir)
        try:
            summary = run_loadgen(
                *server.address, ["2D_Q91"], total=6,
                concurrency=3, trace_every=2,
            )
            assert summary["ok"] == 6
            assert summary["traced"] == 3
            traced_ids = {r["trace_id"] for r in summary["records"]
                          if r.get("trace_id")}
            assert len(traced_ids) == 3
        finally:
            server.stop()


class TestServeDashboard:
    def test_dashboard_serves_html_and_concurrent_scrapes(self, serve_env):
        server = start_server()
        try:
            # Warm once so scrapes race against real inflight work.
            client = ServeClient(*server.address)
            try:
                status, _ = client.discover({"query": "2D_Q91"})
                assert status == 200
            finally:
                client.close()

            errors = []

            def hammer_requests():
                client = ServeClient(*server.address)
                try:
                    for _ in range(3):
                        status, obj = client.discover(
                            {"query": "2D_Q91", "sleep_s": 0.05})
                        if status != 200:
                            errors.append(("discover", status, obj))
                finally:
                    client.close()

            def hammer_scrapes():
                client = ServeClient(*server.address)
                try:
                    for _ in range(5):
                        text = client.metrics_text()
                        if "repro_serve_requests_total" not in text:
                            errors.append(("metrics", text[:80]))
                        html = client.dashboard_html()
                        if "<svg" not in html or "</html>" not in html:
                            errors.append(("dashboard", html[:80]))
                finally:
                    client.close()

            threads = ([threading.Thread(target=hammer_requests)
                        for _ in range(3)]
                       + [threading.Thread(target=hammer_scrapes)
                          for _ in range(3)])
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
        finally:
            server.stop()


class TestServeAudit:
    def test_audit_log_captures_slow_and_sampled(self, serve_env, tmp_path):
        audit = tmp_path / "audit.jsonl"
        server = start_server(audit_path=str(audit),
                              audit_threshold_s=0.2, audit_every=2)
        try:
            client = ServeClient(*server.address)
            try:
                for index in range(4):
                    sleep = 0.3 if index == 3 else 0.0
                    status, _ = client.discover(
                        {"query": "2D_Q91", "sleep_s": sleep})
                    assert status == 200
            finally:
                client.close()
        finally:
            server.stop()
        with open(audit, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert records, "audit log stayed empty"
        assert all(r["schema"] == AUDIT_SCHEMA for r in records)
        slow = [r for r in records if r["slow"]]
        assert len(slow) == 1
        assert slow[0]["total_s"] >= 0.2
        assert slow[0]["query"] == "2D_Q91"
        assert any(not r["slow"] for r in records)  # sampled path
