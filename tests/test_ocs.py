"""Unit tests for the ESS / optimal cost surface."""

import numpy as np
import pytest

from repro import ESS, ESSGrid
from tests.conftest import make_toy_query


class TestBuild:
    def test_shapes(self, toy_ess):
        n = toy_ess.grid.num_points
        assert toy_ess.optimal_cost.shape == (n,)
        assert toy_ess.plan_ids.shape == (n,)
        assert toy_ess.posp_size == len(toy_ess.plans)

    def test_every_plan_id_used(self, toy_ess):
        used = set(np.unique(toy_ess.plan_ids))
        assert used == set(range(toy_ess.posp_size))

    def test_min_max_at_corners(self, toy_ess):
        grid = toy_ess.grid
        origin_cost = toy_ess.optimal_cost[grid.flat_index(grid.origin)]
        terminus_cost = toy_ess.optimal_cost[grid.flat_index(grid.terminus)]
        assert origin_cost == pytest.approx(toy_ess.min_cost)
        assert terminus_cost == pytest.approx(toy_ess.max_cost)

    def test_build_with_resolution_shortcut(self):
        ess = ESS.build(make_toy_query(), resolution=6)
        assert ess.grid.shape == (6, 6)


class TestPCM:
    """Plan Cost Monotonicity (paper Section 2.4) over the built surface."""

    def test_optimal_cost_monotone_along_each_axis(self, toy_ess):
        surface = toy_ess.optimal_cost.reshape(toy_ess.grid.shape)
        assert (np.diff(surface, axis=0) > 0).all()
        assert (np.diff(surface, axis=1) > 0).all()

    def test_each_plan_cost_monotone(self, toy_ess):
        shape = toy_ess.grid.shape
        for pid in range(toy_ess.posp_size):
            cost = toy_ess.plan_cost_array(pid).reshape(shape)
            assert (np.diff(cost, axis=0) > 0).all()
            assert (np.diff(cost, axis=1) > 0).all()

    def test_optimal_cost_lower_bounds_every_plan(self, toy_ess):
        for pid in range(toy_ess.posp_size):
            cost = toy_ess.plan_cost_array(pid)
            assert (cost >= toy_ess.optimal_cost * (1 - 1e-9)).all()

    def test_plan_optimal_in_own_region(self, toy_ess):
        for pid in range(toy_ess.posp_size):
            region = np.flatnonzero(toy_ess.plan_ids == pid)
            cost = toy_ess.plan_cost_array(pid)[region]
            optimal = toy_ess.optimal_cost[region]
            assert np.allclose(cost, optimal, rtol=1e-9)


class TestCaches:
    def test_plan_cost_at_matches_array(self, toy_ess):
        pid = int(toy_ess.plan_ids[17])
        assert toy_ess.plan_cost_at(pid, 17) == pytest.approx(
            float(toy_ess.plan_cost_array(pid)[17])
        )

    def test_plan_cost_at_points_matches_array(self, toy_ess):
        pid = int(toy_ess.plan_ids[0])
        flats = np.array([0, 5, 17, toy_ess.grid.num_points - 1])
        restricted = toy_ess.plan_cost_at_points(pid, flats)
        full = toy_ess.plan_cost_array(pid)[flats]
        assert np.allclose(restricted, full)

    def test_plan_cost_at_points_without_full_array(self):
        ess = ESS.build(make_toy_query(),
                        grid=ESSGrid(2, resolution=6, sel_min=1e-6))
        flats = np.array([1, 8, 20])
        pid = int(ess.plan_ids[8])
        restricted = ess.plan_cost_at_points(pid, flats)
        assert np.allclose(restricted, ess.plan_cost_array(pid)[flats])

    def test_cost_cache_eviction_bounded(self, toy_ess):
        # Exercise the FIFO bound without asserting internals too hard.
        limit = toy_ess.COST_CACHE_LIMIT
        assert len(toy_ess._cost_arrays) <= limit


class TestSpillData:
    def test_spill_order_covers_all_dims(self, toy_ess):
        for pid in range(toy_ess.posp_size):
            order = toy_ess.spill_order(pid)
            assert sorted(order) == [0, 1]

    def test_spill_dimension_first_remaining(self, toy_ess):
        pid = 0
        order = toy_ess.spill_order(pid)
        assert toy_ess.spill_dimension(pid, order) == order[0]
        assert toy_ess.spill_dimension(pid, [order[1]]) == order[1]
        assert toy_ess.spill_dimension(pid, []) is None

    def test_spill_cost_curve_monotone_and_bounded(self, toy_ess):
        grid = toy_ess.grid
        pid = int(toy_ess.plan_ids[grid.num_points // 2])
        coords = grid.coords_of(grid.num_points // 2)
        for dim in toy_ess.spill_order(pid):
            curve = toy_ess.spill_cost_curve(pid, dim, coords)
            assert curve.shape == (grid.resolution[dim],)
            assert (np.diff(curve) >= -1e-9).all()
            full = toy_ess.plan_cost_at(pid, grid.num_points // 2)
            assert curve[coords[dim]] <= full * (1 + 1e-9)

    def test_suboptimality_surface_at_least_one(self, toy_ess):
        for pid in range(min(3, toy_ess.posp_size)):
            surface = toy_ess.suboptimality_surface(pid)
            assert (surface >= 1 - 1e-9).all()
