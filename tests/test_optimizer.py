"""Unit tests for the DP optimizer: correctness against brute force,
selectivity injection, and sweep consistency."""

import itertools

import numpy as np
import pytest

from repro import DEFAULT_COST_MODEL, Optimizer
from repro.optimizer.plans import plan_cost
from tests.conftest import make_star_query, make_toy_query


@pytest.fixture(scope="module")
def toy_optimizer():
    return Optimizer(make_toy_query())


class TestStructure:
    def test_connected_masks_exclude_cross_products(self, toy_optimizer):
        # part(bit0) - lineitem(bit1) - orders(bit2): {part, orders} is
        # disconnected and must not appear.
        assert 0b101 not in toy_optimizer.alternatives

    def test_full_mask_present(self, toy_optimizer):
        assert toy_optimizer.full_mask in toy_optimizer.alternatives

    def test_scan_alternatives_include_index_when_filtered(self, toy_optimizer):
        # part has an indexed filter column: two scan alternatives.
        part_mask = toy_optimizer._bit["part"]
        assert len(toy_optimizer.alternatives[part_mask]) == 2

    def test_unfiltered_table_only_seq_scan(self, toy_optimizer):
        orders_mask = toy_optimizer._bit["orders"]
        assert len(toy_optimizer.alternatives[orders_mask]) == 1

    def test_star_query_alternatives(self):
        optimizer = Optimizer(make_star_query(3))
        # Full set has alternatives; singletons exist for every table.
        assert optimizer.full_mask in optimizer.alternatives
        assert len(optimizer._connected_masks) >= 4 + 3


class TestSinglePointOptimization:
    def test_plan_and_cost_returned(self, toy_optimizer):
        plan, cost = toy_optimizer.optimize_at((1e-6, 1e-6))
        assert plan.tables == {"part", "lineitem", "orders"}
        assert cost > 0

    def test_reported_cost_matches_recosting(self, toy_optimizer):
        query = toy_optimizer.query
        for sels in [(1e-6, 1e-6), (1e-3, 1e-5), (0.9, 0.9)]:
            plan, cost = toy_optimizer.optimize_at(sels)
            recost = plan_cost(plan, query, DEFAULT_COST_MODEL,
                               dict(enumerate(sels)))
            assert recost == pytest.approx(cost, rel=1e-9)

    def test_plan_changes_across_space(self, toy_optimizer):
        low, _ = toy_optimizer.optimize_at((1e-7, 1e-7))
        high, _ = toy_optimizer.optimize_at((0.9, 0.9))
        assert low.key != high.key

    def test_optimal_no_worse_than_enumerated_alternatives(self, toy_optimizer):
        """Brute-force check: DP cost <= cost of every hand-built plan."""
        from repro.optimizer.plans import (
            HASH_JOIN,
            MERGE_JOIN,
            SEQ_SCAN,
            JoinNode,
            ScanNode,
        )

        query = toy_optimizer.query
        sels = (1e-4, 1e-3)
        _, best_cost = toy_optimizer.optimize_at(sels)
        env = dict(enumerate(sels))
        part = ScanNode("part", SEQ_SCAN, query.filters_on("part"))
        lineitem = ScanNode("lineitem", SEQ_SCAN)
        orders = ScanNode("orders", SEQ_SCAN)
        j_pl, j_ol = query.joins
        candidates = []
        for op1, op2 in itertools.product([HASH_JOIN, MERGE_JOIN], repeat=2):
            left = JoinNode(op1, lineitem, part, [j_pl])
            candidates.append(JoinNode(op2, left, orders, [j_ol]))
            right = JoinNode(op1, lineitem, orders, [j_ol])
            candidates.append(JoinNode(op2, right, part, [j_pl]))
        for plan in candidates:
            cost = plan_cost(plan, query, DEFAULT_COST_MODEL, env)
            assert best_cost <= cost * (1 + 1e-9)


class TestGridSweep:
    def test_sweep_matches_pointwise(self, toy_optimizer):
        sels0 = np.geomspace(1e-6, 1, 5)
        sels1 = np.geomspace(1e-6, 1, 5)
        grid0, grid1 = np.meshgrid(sels0, sels1, indexing="ij")
        env = {0: grid0.ravel(), 1: grid1.ravel()}
        result = toy_optimizer.optimize(env, num_points=25)
        for point in range(25):
            _, cost = toy_optimizer.optimize_at(
                (grid0.ravel()[point], grid1.ravel()[point])
            )
            assert result.optimal_cost[point] == pytest.approx(cost)

    def test_sweep_plans_match_pointwise(self, toy_optimizer):
        sels = np.geomspace(1e-6, 1, 4)
        grid0, grid1 = np.meshgrid(sels, sels, indexing="ij")
        env = {0: grid0.ravel(), 1: grid1.ravel()}
        result = toy_optimizer.optimize(env, num_points=16)
        keys, pool = result.plans()
        for point in range(16):
            plan, _ = toy_optimizer.optimize_at(
                (grid0.ravel()[point], grid1.ravel()[point])
            )
            assert keys[point] == plan.key
        assert set(keys) <= set(pool)

    def test_plan_pool_contains_only_full_plans(self, toy_optimizer):
        env = {0: np.array([1e-5, 1e-2]), 1: np.array([1e-5, 1e-2])}
        _, pool = toy_optimizer.optimize(env, num_points=2).plans()
        for plan in pool.values():
            assert plan.tables == toy_optimizer.all_tables

    def test_scalar_env_defaults_to_one_point(self, toy_optimizer):
        result = toy_optimizer.optimize({0: 1e-5, 1: 1e-5})
        assert result.num_points == 1
