"""Exhaustive differential test: the DP against a full plan enumeration.

For small queries we can enumerate *every* plan in the search space —
all bushy join trees over connected subgraphs, all operator choices,
all scan choices — and check the DP's optimum matches the brute-force
minimum at many selectivity points.  This pins the DP's recurrence,
dedup rules, and orientation handling.
"""

import itertools

import numpy as np
import pytest

from repro import DEFAULT_COST_MODEL, Optimizer
from repro.optimizer.plans import (
    HASH_JOIN,
    INDEX_NL_JOIN,
    INDEX_SCAN,
    MERGE_JOIN,
    NL_JOIN,
    SEQ_SCAN,
    JoinNode,
    ScanNode,
    plan_cost,
)
from tests.conftest import make_star_query, make_toy_query


def scan_alternatives(query, table):
    alts = [ScanNode(table, SEQ_SCAN, tuple(query.filters_on(table)))]
    schema_table = query.schema.table(table)
    if any(schema_table.column(f.column).indexed
           for f in query.filters_on(table)):
        alts.append(ScanNode(table, INDEX_SCAN,
                             tuple(query.filters_on(table))))
    return alts


def enumerate_plans(query, tables):
    """All bushy plans over ``tables`` (connected splits only)."""
    tables = frozenset(tables)
    if len(tables) == 1:
        yield from scan_alternatives(query, next(iter(tables)))
        return
    for r in range(1, len(tables)):
        for left in itertools.combinations(sorted(tables), r):
            left = frozenset(left)
            right = tables - left
            preds = [
                p for p in query.joins
                if (p.left_table in left and p.right_table in right)
                or (p.left_table in right and p.right_table in left)
            ]
            if not preds:
                continue
            if not query.join_graph.is_connected(left):
                continue
            if not query.join_graph.is_connected(right):
                continue
            for outer in enumerate_plans(query, left):
                for inner in enumerate_plans(query, right):
                    yield JoinNode(HASH_JOIN, outer, inner, preds)
                    yield JoinNode(NL_JOIN, outer, inner, preds)
                    yield JoinNode(MERGE_JOIN, outer, inner, preds)
                    if len(right) == 1:
                        inner_table = next(iter(right))
                        schema_table = query.schema.table(inner_table)
                        indexable = any(
                            schema_table.column(
                                p.column_for(inner_table)
                            ).indexed
                            for p in preds if inner_table in p.tables
                        )
                        if indexable and isinstance(inner, ScanNode):
                            yield JoinNode(
                                INDEX_NL_JOIN, outer,
                                ScanNode(inner_table, INDEX_SCAN,
                                         tuple(query.filters_on(inner_table))),
                                preds,
                            )


def brute_force_optimum(query, sels):
    env = dict(enumerate(sels))
    best = np.inf
    for plan in enumerate_plans(query, query.tables):
        cost = float(plan_cost(plan, query, DEFAULT_COST_MODEL, env))
        best = min(best, cost)
    return best


@pytest.mark.parametrize("sels", [
    (1e-6, 1e-6), (1e-3, 1e-6), (1e-6, 1e-3), (1e-2, 1e-2),
    (0.5, 1e-5), (0.9, 0.9), (1e-4, 0.3),
])
def test_dp_matches_exhaustive_enumeration_toy(sels):
    query = make_toy_query()
    optimizer = Optimizer(query)
    _, dp_cost = optimizer.optimize_at(sels)
    brute = brute_force_optimum(query, sels)
    assert dp_cost == pytest.approx(brute, rel=1e-9)


@pytest.mark.parametrize("sels", [
    (1e-5, 1e-4, 1e-3), (1e-2, 1e-5, 1e-4), (0.3, 0.3, 0.3),
    (1e-6, 0.8, 1e-6),
])
def test_dp_matches_exhaustive_enumeration_star(sels):
    query = make_star_query(3)
    optimizer = Optimizer(query)
    _, dp_cost = optimizer.optimize_at(sels)
    brute = brute_force_optimum(query, sels)
    assert dp_cost == pytest.approx(brute, rel=1e-9)


def test_left_deep_dp_matches_restricted_enumeration():
    query = make_toy_query()
    optimizer = Optimizer(query, left_deep=True)
    for sels in [(1e-5, 1e-5), (1e-2, 1e-4)]:
        _, dp_cost = optimizer.optimize_at(sels)
        env = dict(enumerate(sels))
        best = np.inf
        for plan in enumerate_plans(query, query.tables):
            # Restrict the brute force to left-deep trees.
            if any(isinstance(n, JoinNode) and not isinstance(
                    n.inner, ScanNode) for n in plan.iter_nodes()):
                continue
            cost = float(plan_cost(plan, query, DEFAULT_COST_MODEL, env))
            best = min(best, cost)
        assert dp_cost == pytest.approx(best, rel=1e-9)
