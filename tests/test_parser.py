"""Tests for the SQL front-end."""

import pytest

from repro import QueryError
from repro.query.parser import parse_sql
from tests.conftest import make_toy_schema


@pytest.fixture(scope="module")
def schema():
    return make_toy_schema()


class TestBasicParsing:
    def test_full_query(self, schema):
        query = parse_sql(
            """
            SELECT * FROM part, lineitem, orders
            WHERE part.p_partkey = lineitem.l_partkey [2e-5] epp
              AND orders.o_orderkey = lineitem.l_orderkey [3e-4] epp
              AND part.p_retailprice < 1000 [0.05]
            """,
            schema,
        )
        assert len(query.tables) == 3
        assert len(query.joins) == 2
        assert len(query.filters) == 1
        assert query.num_epps == 2
        assert query.epp(0).selectivity == pytest.approx(2e-5)

    def test_case_insensitive_keywords(self, schema):
        query = parse_sql(
            "select * from part, lineitem "
            "where part.p_partkey = lineitem.l_partkey",
            schema,
        )
        assert len(query.joins) == 1

    def test_no_where_clause(self, schema):
        query = parse_sql("SELECT * FROM part", schema)
        assert query.joins == () and query.filters == ()

    def test_trailing_semicolon(self, schema):
        query = parse_sql("SELECT * FROM part;", schema)
        assert query.tables == ("part",)

    def test_epp_comment_marker(self, schema):
        query = parse_sql(
            """
            SELECT * FROM part, lineitem
            WHERE part.p_partkey = lineitem.l_partkey  -- epp
            """,
            schema,
        )
        assert query.num_epps == 1

    def test_default_join_selectivity_from_catalog(self, schema):
        query = parse_sql(
            "SELECT * FROM part, lineitem "
            "WHERE part.p_partkey = lineitem.l_partkey",
            schema,
        )
        assert query.joins[0].selectivity == pytest.approx(1 / 2_000_000)

    def test_filter_shapes(self, schema):
        query = parse_sql(
            """
            SELECT * FROM part
            WHERE part.p_retailprice < 500 [0.02]
            """,
            schema,
        )
        pred = query.filters[0]
        assert pred.op == "<"
        assert pred.value == 500
        assert pred.selectivity == pytest.approx(0.02)

    def test_reversed_filter_literal(self, schema):
        query = parse_sql(
            "SELECT * FROM part WHERE 42 = part.p_retailprice [0.001]",
            schema,
        )
        assert query.filters[0].op == "="
        assert query.filters[0].value == 42


class TestErrors:
    def test_garbage_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_sql("DELETE FROM part", schema)

    def test_unknown_table_rejected(self, schema):
        with pytest.raises(Exception):
            parse_sql("SELECT * FROM ghost", schema)

    def test_table_not_in_from_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_sql(
                "SELECT * FROM part "
                "WHERE part.p_partkey = lineitem.l_partkey",
                schema,
            )

    def test_unsupported_predicate_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_sql(
                "SELECT * FROM part, lineitem "
                "WHERE part.p_partkey < lineitem.l_partkey",
                schema,
            )

    def test_missing_operator_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_sql("SELECT * FROM part WHERE part.p_retailprice", schema)

    def test_alias_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_sql("SELECT * FROM part p", schema)


class TestEndToEnd:
    def test_parsed_query_drives_discovery(self, schema):
        from repro import ContourSet, ESS, ESSGrid, SpillBound

        query = parse_sql(
            """
            SELECT * FROM part, lineitem, orders
            WHERE part.p_partkey = lineitem.l_partkey [2e-5] epp
              AND orders.o_orderkey = lineitem.l_orderkey [3e-4] epp
              AND part.p_retailprice < 1000 [0.05]
            """,
            schema, name="parsed_eq",
        )
        ess = ESS.build(query, ESSGrid(2, resolution=8, sel_min=1e-6))
        sb = SpillBound(ess, ContourSet(ess))
        result = sb.run(query.true_location())
        assert result.suboptimality <= sb.mso_guarantee()
