"""Tests for the frontier-batched sweep engine (repro.perf.batch).

The engine's contract is *bit-identity* with the per-location reference
loop — every comparison here is ``np.array_equal``, never a tolerance.
"""

import numpy as np
import pytest

from repro import AlignedBound, ContourSet, ESS, ESSGrid, PlanBouquet, SpillBound
from repro.core.mso import evaluate_algorithm
from repro.perf.batch import batched_suboptimality
from repro.perf.timers import TIMERS
from tests.conftest import make_star_query


def _loop_reference(algorithm, flats):
    """The scalar walk, point by point — the engine's ground truth."""
    return np.array(
        [algorithm.run(int(f)).suboptimality for f in flats], dtype=float
    )


@pytest.fixture(scope="module")
def star4_ess():
    query = make_star_query(4)
    grid = ESSGrid(4, resolution=6, sel_min=1e-6)
    return ESS.build(query, grid)


@pytest.fixture(scope="module")
def star4_contours(star4_ess):
    return ContourSet(star4_ess)


class TestBitIdentity2D:
    @pytest.mark.parametrize("fixture", ["toy_pb", "toy_sb", "toy_ab"])
    def test_full_grid(self, request, fixture):
        algorithm = request.getfixturevalue(fixture)
        batched = batched_suboptimality(algorithm)
        loop = _loop_reference(algorithm,
                               range(algorithm.ess.grid.num_points))
        assert batched is not None
        assert np.array_equal(batched, loop)


class TestBitIdentity3D:
    @pytest.mark.parametrize("cls", [PlanBouquet, SpillBound, AlignedBound])
    def test_full_grid(self, star_ess, star_contours, cls):
        algorithm = cls(star_ess, star_contours)
        batched = batched_suboptimality(algorithm)
        loop = _loop_reference(algorithm, range(star_ess.grid.num_points))
        assert np.array_equal(batched, loop)

    @pytest.mark.parametrize("cls", [PlanBouquet, SpillBound, AlignedBound])
    @pytest.mark.parametrize("cost_ratio", [1.37, 2.93, 4.51])
    def test_randomized_cost_ratios(self, star_ess, cls, cost_ratio):
        contours = ContourSet(star_ess, cost_ratio=cost_ratio)
        algorithm = cls(star_ess, contours)
        flats = np.random.default_rng(17).choice(
            star_ess.grid.num_points, size=128, replace=False
        )
        batched = batched_suboptimality(algorithm, flats)
        loop = _loop_reference(cls(star_ess, contours), flats)
        assert np.array_equal(batched, loop)


class TestBitIdentity4D:
    @pytest.mark.parametrize("cls", [PlanBouquet, SpillBound, AlignedBound])
    def test_sampled_locations(self, star4_ess, star4_contours, cls):
        algorithm = cls(star4_ess, star4_contours)
        full = batched_suboptimality(algorithm)
        flats = np.random.default_rng(4).choice(
            star4_ess.grid.num_points, size=150, replace=False
        )
        loop = _loop_reference(cls(star4_ess, star4_contours), flats)
        assert np.array_equal(full[flats], loop)


class TestPointsInput:
    def test_duplicates_and_order_preserved(self, toy_sb):
        points = [7, 7, 0, 63, 12, 7, 399]
        batched = batched_suboptimality(toy_sb, points)
        loop = _loop_reference(toy_sb, points)
        assert np.array_equal(batched, loop)
        assert batched[0] == batched[1] == batched[5]

    def test_empty_points(self, toy_sb):
        out = batched_suboptimality(toy_sb, [])
        assert out.shape == (0,)

    def test_restricted_matches_full(self, toy_ab):
        full = batched_suboptimality(toy_ab)
        points = [3, 99, 250]
        restricted = batched_suboptimality(toy_ab, points)
        assert np.array_equal(restricted, full[points])


class TestSideEffects:
    def test_ab_observed_max_penalty_parity(self, star_ess, star_contours):
        loop_ab = AlignedBound(star_ess, star_contours)
        _loop_reference(loop_ab, range(star_ess.grid.num_points))
        batch_ab = AlignedBound(star_ess, star_contours)
        batched_suboptimality(batch_ab)
        assert loop_ab.observed_max_penalty == batch_ab.observed_max_penalty


class TestCoverageGate:
    def test_subclasses_fall_back_to_loop(self, toy_ess, toy_contours):
        from repro.ess.dependence import (
            CorrelatedSpillBound,
            CorrelationSpec,
        )

        algo = CorrelatedSpillBound(
            toy_ess, [CorrelationSpec(0, 1, 0.3)], toy_contours
        )
        assert batched_suboptimality(algo) is None

    def test_timers_counters(self, toy_sb):
        TIMERS.reset()
        batched_suboptimality(toy_sb, [1, 2, 3])
        assert TIMERS.counter("batched_sweeps") == 1
        assert TIMERS.counter("batched_sweep_points") == 3
        assert TIMERS.counter("batched_sweep_states") >= 1


class TestEvaluateAlgorithmEngines:
    @pytest.mark.parametrize("cls", [PlanBouquet, SpillBound, AlignedBound])
    def test_engines_agree(self, star_ess, star_contours, cls):
        loop = evaluate_algorithm(cls(star_ess, star_contours),
                                  engine="loop")
        batch = evaluate_algorithm(cls(star_ess, star_contours),
                                   engine="batch")
        assert np.array_equal(loop.suboptimality, batch.suboptimality)
        assert loop.mso == batch.mso
        assert loop.worst_location == batch.worst_location
