"""Smoke tests for the perf benchmark (repro bench) and phase timers."""

import json

import pytest

from repro.bench import workloads
from repro.perf.timers import PhaseTimer


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ess-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    workloads.clear_cache()
    yield
    workloads.clear_cache()


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("build"):
            pass
        with timer.phase("build"):
            pass
        timer.record("sweep", 1.5)
        timer.incr("hits")
        timer.incr("hits", 2)
        summary = timer.summary()
        assert summary["phases"]["build"]["count"] == 2
        assert summary["phases"]["sweep"]["total_s"] == 1.5
        assert summary["counters"]["hits"] == 3

    def test_write_json(self, tmp_path):
        timer = PhaseTimer()
        timer.record("x", 0.25)
        path = tmp_path / "bench.json"
        timer.write_json(path, extra={"schema_version": 1})
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 1
        assert payload["phases"]["x"]["total_s"] == 0.25


@pytest.mark.smoke_bench
class TestSmokeBench:
    """Fast end-to-end run of the perf benchmark at smoke scale.

    Marked ``smoke_bench`` so tier-1 can deselect it if it ever grows;
    at smoke resolution the whole thing is sub-second.
    """

    def test_run_bench_writes_artifact(self, isolated_cache, tmp_path):
        from repro.bench.perfbench import BENCH_SCHEMA_VERSION, run_bench

        path = tmp_path / "BENCH_smoke.json"
        payload = run_bench(json_path=str(path), query="2D_Q91",
                            profile="smoke", workers=2)
        on_disk = json.loads(path.read_text())
        assert on_disk["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["cache"]["roundtrip_identical"] is True
        assert payload["cache"]["cache_hit"] is True
        assert payload["cache"]["warm_load_s"] > 0
        assert set(payload["sweeps"]) == {"pb", "sb", "ab"}
        for stats in payload["sweeps"].values():
            assert stats["batch_identical"] is True
            assert stats["max_abs_deviation"] == 0.0
            assert stats["loop_s"] > 0 and stats["batch_s"] > 0
        for stats in payload["parallel"].values():
            assert stats["workers_requested"] == 2
            if stats["skipped"]:
                assert stats["skip_reason"]
            else:
                assert stats["max_abs_deviation"] == 0.0
        assert "ess_build" in on_disk["phases"]
        assert on_disk["hardware"]["cpu_count"] >= 1

    def test_cli_bench_subcommand(self, isolated_cache, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "BENCH_cli.json"
        code = main(["--profile", "smoke", "bench", "--query", "2D_Q91",
                     "--workers", "2", "--json", str(path)])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "perf bench on 2D_Q91" in out
