"""Tests for the persistent ESS cache layer (repro.perf.cache)."""

import os

import numpy as np
import pytest

from repro.bench import workloads
from repro.ess.persistence import ess_cache_key
from repro.optimizer.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.perf import cache as ess_cache
from repro.perf.timers import TIMERS


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Point the persistent cache at a fresh directory, clear registries."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ess-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    workloads.clear_cache()
    TIMERS.reset()
    yield tmp_path / "ess-cache"
    workloads.clear_cache()
    TIMERS.reset()


class TestFingerprint:
    def test_equal_models_share_fingerprint(self):
        assert CostModel().fingerprint() == CostModel().fingerprint()
        assert DEFAULT_COST_MODEL.fingerprint() == CostModel().fingerprint()

    def test_perturbed_model_differs(self):
        noisy = DEFAULT_COST_MODEL.with_noise(0.1, seed=3)
        assert noisy.fingerprint() != DEFAULT_COST_MODEL.fingerprint()

    def test_registry_keys_by_value_not_identity(self, isolated_cache):
        """Two separately-constructed equal models must share the entry.

        The old registry keyed on ``id(cost_model)``: ids are recycled
        after garbage collection, so a perturbed-model ablation could
        silently reuse a stale instance.  Value fingerprints make the
        key stable across object identities.
        """
        a = workloads.load("3D_Q15", profile="smoke", cost_model=CostModel())
        b = workloads.load("3D_Q15", profile="smoke", cost_model=CostModel())
        assert a is b
        noisy = DEFAULT_COST_MODEL.with_noise(0.2, seed=7)
        c = workloads.load("3D_Q15", profile="smoke", cost_model=noisy)
        assert c is not a


class TestPersistentCache:
    def test_warm_load_is_bit_identical(self, isolated_cache):
        cold = workloads.load("2D_Q91", profile="smoke")
        assert TIMERS.counter("ess_cache_store") == 1
        workloads.clear_cache()
        warm = workloads.load("2D_Q91", profile="smoke")
        assert TIMERS.counter("ess_cache_hit") == 1
        assert warm.ess is not cold.ess
        assert np.array_equal(warm.ess.optimal_cost, cold.ess.optimal_cost)
        assert np.array_equal(warm.ess.plan_ids, cold.ess.plan_ids)
        assert warm.ess.plan_keys == cold.ess.plan_keys
        for dim in range(cold.ess.grid.num_dims):
            assert np.array_equal(warm.ess.grid.values[dim],
                                  cold.ess.grid.values[dim])

    def test_restored_ess_drives_identical_discovery(self, isolated_cache):
        from repro.core.spill_bound import SpillBound

        cold = workloads.load("2D_Q91", profile="smoke")
        cold_sb = SpillBound(cold.ess, cold.contours)
        reference = cold_sb.evaluate_all()
        workloads.clear_cache()
        warm = workloads.load("2D_Q91", profile="smoke")
        warm_sb = SpillBound(warm.ess, warm.contours)
        assert np.array_equal(warm_sb.evaluate_all(), reference)

    def test_cost_model_change_invalidates(self, isolated_cache):
        workloads.load("2D_Q91", profile="smoke")
        workloads.clear_cache()
        noisy = DEFAULT_COST_MODEL.with_noise(0.3, seed=5)
        workloads.load("2D_Q91", profile="smoke", cost_model=noisy)
        # The perturbed model must key a distinct archive, not hit the
        # one built for the default model.
        assert TIMERS.counter("ess_cache_hit") == 0
        assert TIMERS.counter("ess_cache_store") == 2

    def test_resolution_change_invalidates(self, isolated_cache):
        workloads.load("2D_Q91", profile="smoke")
        workloads.clear_cache()
        workloads.load("2D_Q91", profile="smoke", resolution=6)
        assert TIMERS.counter("ess_cache_hit") == 0
        assert TIMERS.counter("ess_cache_store") == 2

    def test_distinct_keys_map_to_distinct_archives(self):
        base = dict(query_name="2D_Q91", resolution=[10, 10],
                    sel_min=[1e-5, 1e-5],
                    cost_fingerprint=DEFAULT_COST_MODEL.fingerprint(),
                    left_deep=False)
        path = ess_cache.archive_path(ess_cache_key(**base))
        for tweak in (
            {"resolution": [12, 12]},
            {"sel_min": [1e-6, 1e-5]},
            {"cost_fingerprint": "deadbeefdeadbeef"},
            {"left_deep": True},
            {"query_name": "3D_Q91"},
        ):
            other = ess_cache.archive_path(ess_cache_key(**{**base, **tweak}))
            assert other != path

    def test_cache_disable_knob(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        workloads.load("2D_Q91", profile="smoke")
        assert not os.path.isdir(str(isolated_cache))
        assert TIMERS.counter("ess_cache_store") == 0

    def test_corrupt_archive_treated_as_miss(self, isolated_cache):
        workloads.load("2D_Q91", profile="smoke")
        archives = [f for f in os.listdir(str(isolated_cache))
                    if f.endswith(".ess.npz")]
        assert len(archives) == 1
        with open(os.path.join(str(isolated_cache), archives[0]), "wb") as f:
            f.write(b"not an npz")
        workloads.clear_cache()
        instance = workloads.load("2D_Q91", profile="smoke")  # rebuilds
        assert instance.ess.grid.num_points > 0
        assert TIMERS.counter("ess_cache_invalid") == 1

    def test_clear_removes_archives(self, isolated_cache):
        workloads.load("2D_Q91", profile="smoke")
        # A v3 entry is the .npz plus its two mmap sidecars.
        assert ess_cache.clear() == 3
        assert ess_cache.clear() == 0


class TestConcurrentArchiveIO:
    """Regression: store()'s stale-sidecar GC vs concurrent fetch().

    Before store() took :data:`repro.perf.cache._IO_LOCK`, a fetch
    racing a rewrite could open the old archive after the rename *while*
    the GC was deleting the sidecars that archive references — a torn
    read surfacing as ``ess_cache_invalid``.  Under the lock the reader
    sees either complete variant, never a half-collected one.
    """

    def test_store_fetch_hammer_never_tears(self, isolated_cache):
        import threading

        first = workloads.load("2D_Q91", profile="smoke")
        workloads.clear_cache()
        # A second surface with different content (and therefore
        # different content-addressed sidecar names) stored under the
        # SAME archive path, so every swap makes the GC delete the
        # other variant's sidecars.
        second = workloads.load("2D_Q91", profile="smoke", resolution=4)
        key = first.ess.provenance["disk_key"]
        references = (first.ess.optimal_cost.copy(),
                      second.ess.optimal_cost.copy())
        ess_cache.store(first.ess, key)
        TIMERS.reset()

        stop = threading.Event()
        failures = []

        def rewriter(ess):
            while not stop.is_set():
                ess_cache.store(ess, key)

        def reader():
            while not stop.is_set():
                got = ess_cache.fetch(key, first.query, DEFAULT_COST_MODEL)
                if got is None:
                    failures.append("miss")
                elif not any(np.array_equal(got.optimal_cost, ref)
                             for ref in references):
                    failures.append("mismatch")

        threads = [
            threading.Thread(target=rewriter, args=(first.ess,)),
            threading.Thread(target=rewriter, args=(second.ess,)),
            threading.Thread(target=reader),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        stop.wait(1.2)
        stop.set()
        for thread in threads:
            thread.join(30)

        assert failures == []
        assert TIMERS.counter("ess_cache_invalid") == 0
        assert TIMERS.counter("ess_cache_hit") > 0
