"""Tests for the multiprocess sweep engine (repro.perf.parallel)."""

import numpy as np
import pytest

from repro.bench import workloads
from repro.core.mso import evaluate_algorithm
from repro.core.spill_bound import SpillBound
from repro.perf import parallel as par


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ess-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    workloads.clear_cache()
    yield
    workloads.clear_cache()


class TestWorkerCount:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert par.worker_count(2) == 2

    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert par.worker_count() == 1
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert par.worker_count() == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert par.worker_count() == 3
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert par.worker_count() >= 1

    def test_env_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            par.worker_count()


class TestSpecDerivation:
    def test_registry_instances_have_specs(self, isolated_cache):
        instance = workloads.load("2D_Q91", profile="smoke")
        spec = par.spec_for(SpillBound(instance.ess, instance.contours))
        assert spec is not None
        assert spec.kind == "workload"
        assert spec.algorithm == "sb"

    def test_hand_built_ess_stays_serial(self, toy_sb):
        assert par.spec_for(toy_sb) is None

    def test_subclasses_stay_serial(self, isolated_cache):
        from repro.ess.dependence import (
            CorrelatedSpillBound,
            CorrelationSpec,
        )

        instance = workloads.load("2D_Q91", profile="smoke")
        algo = CorrelatedSpillBound(
            instance.ess, [CorrelationSpec(0, 1, 0.3)], instance.contours
        )
        assert par.spec_for(algo) is None

    def test_mismatched_contours_stay_serial(self, isolated_cache):
        from repro.ess.contours import ContourSet

        instance = workloads.load("2D_Q91", profile="smoke")
        other = ContourSet(instance.ess, cost_ratio=3.0)
        assert par.spec_for(SpillBound(instance.ess, other)) is None

    def test_pb_spec_carries_lambda(self, isolated_cache):
        from repro.core.plan_bouquet import PlanBouquet

        instance = workloads.load("2D_Q91", profile="smoke")
        pb = PlanBouquet(instance.ess, instance.contours, lam=0.5)
        spec = par.spec_for(pb)
        assert dict(spec.algo_kwargs)["lam"] == 0.5


class TestFanoutDecision:
    def test_one_worker(self):
        assert par.fanout_decision(10_000, 1) == (1, "one_worker")

    def test_single_cpu(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        assert par.fanout_decision(10_000, 4, cpus=1) == (1, "single_cpu")

    def test_small_sweep(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        assert par.fanout_decision(100, 4, cpus=4) == (1, "small_sweep")

    def test_below_amortization(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        monkeypatch.setattr(par, "MIN_POINTS_PER_WORKER", 300)
        assert par.fanout_decision(500, 4, cpus=4) == (
            1, "below_amortization")

    def test_workers_clamped_to_amortizable_share(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        assert par.fanout_decision(300, 16, cpus=8) == (4, None)

    def test_force_bypasses_guard(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        assert par.fanout_decision(10, 4, cpus=1) == (4, None)

    def test_skips_are_counted(self, isolated_cache, monkeypatch):
        from repro.perf.timers import TIMERS

        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        instance = workloads.load("2D_Q91", profile="smoke")
        spec = par.spec_for(SpillBound(instance.ess, instance.contours))
        TIMERS.reset()
        # 100 points < MIN_PARALLEL_POINTS (or 1 CPU): the guard declines
        # and the caller falls back to the serial path.
        assert par.parallel_suboptimality(spec, range(100), 4) is None
        assert TIMERS.counter("parallel_sweep_skipped") == 1


class TestParallelSweep:
    @pytest.fixture
    def forced_pool(self, monkeypatch):
        """Make the fan-out actually run on any host (1-CPU CI included)."""
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")

    @pytest.mark.parametrize("algo_key", ["pb", "sb", "ab"])
    def test_parallel_matches_loop_exactly(self, isolated_cache,
                                           forced_pool, algo_key):
        from repro.core.aligned_bound import AlignedBound
        from repro.core.plan_bouquet import PlanBouquet

        classes = {"pb": PlanBouquet, "sb": SpillBound, "ab": AlignedBound}
        instance = workloads.load("2D_Q91", profile="smoke")
        cls = classes[algo_key]
        serial = evaluate_algorithm(cls(instance.ess, instance.contours),
                                    engine="loop")
        parallel = evaluate_algorithm(cls(instance.ess, instance.contours),
                                      workers=2, engine="parallel")
        assert np.array_equal(serial.suboptimality, parallel.suboptimality)
        assert serial.mso == parallel.mso
        assert serial.worst_location == parallel.worst_location

    def test_restricted_points_parallel(self, isolated_cache, forced_pool):
        instance = workloads.load("2D_Q91", profile="smoke")
        points = [3, 17, 50, 77, 99]
        serial = evaluate_algorithm(
            SpillBound(instance.ess, instance.contours),
            points=points, engine="loop",
        )
        parallel = evaluate_algorithm(
            SpillBound(instance.ess, instance.contours),
            points=points, workers=2, engine="parallel",
        )
        assert np.array_equal(serial.suboptimality, parallel.suboptimality)
        assert parallel.worst_location in points

    def test_serial_default_unchanged(self, isolated_cache, monkeypatch):
        """Without REPRO_WORKERS the sweep never touches a process pool."""
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        instance = workloads.load("2D_Q91", profile="smoke")
        evaluation = evaluate_algorithm(
            SpillBound(instance.ess, instance.contours)
        )
        assert evaluation.suboptimality.shape == (100,)
