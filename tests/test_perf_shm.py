"""Tests for the shared-memory ESS tier (repro.perf.shm).

The parent of a parallel sweep publishes its surface into
``multiprocessing.shared_memory`` segments; workers (forked, so they
inherit the offer registry) attach through :func:`repro.perf.cache.fetch`
ahead of the disk archive.  These tests exercise the publish/attach
round-trip in-process — attachment is plain segment mapping, identical
in a worker — plus the end-to-end forced-parallel identity.
"""

import numpy as np
import pytest

from repro.bench import workloads
from repro.core.mso import evaluate_algorithm
from repro.core.spill_bound import SpillBound
from repro.ess.persistence import ess_cache_key
from repro.perf import cache, shm
from repro.perf.timers import TIMERS


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Point the persistent cache at a fresh directory, clear registries."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ess-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    workloads.clear_cache()
    TIMERS.reset()
    yield tmp_path / "ess-cache"
    workloads.clear_cache()
    TIMERS.reset()


def _key_of(ess):
    grid = ess.grid
    return ess_cache_key(
        ess.query.name,
        grid.resolution,
        [float(grid.values[d][0]) for d in range(grid.num_dims)],
        ess.cost_model.fingerprint(),
    )


class TestPublishAttach:
    def test_roundtrip_is_bit_identical(self, toy_ess):
        key = _key_of(toy_ess)
        surface = shm.publish(key, toy_ess)
        assert surface is not None
        try:
            assert shm.live_offers() == 1
            attached = shm.attach_if_offered(
                key, toy_ess.query, toy_ess.cost_model
            )
            assert attached is not None
            assert np.array_equal(attached.optimal_cost,
                                  toy_ess.optimal_cost)
            assert np.array_equal(attached.plan_ids, toy_ess.plan_ids)
            assert attached.plan_keys == toy_ess.plan_keys
            for dim in range(toy_ess.grid.num_dims):
                assert np.array_equal(attached.grid.values[dim],
                                      toy_ess.grid.values[dim])
        finally:
            surface.close()
        assert shm.live_offers() == 0

    def test_attached_arrays_alias_segments(self, toy_ess):
        key = _key_of(toy_ess)
        surface = shm.publish(key, toy_ess)
        try:
            attached = shm.attach_if_offered(
                key, toy_ess.query, toy_ess.cost_model
            )
            # The arrays wrap the segment buffers — views, not copies.
            assert attached.optimal_cost.base is not None
            assert attached.plan_ids.base is not None
            assert attached._shm_handles
        finally:
            surface.close()

    def test_attach_miss_returns_none(self, toy_ess):
        key = _key_of(toy_ess)
        assert shm.attach_if_offered(
            key, toy_ess.query, toy_ess.cost_model
        ) is None

    def test_close_withdraws_offer_and_is_idempotent(self, toy_ess):
        key = _key_of(toy_ess)
        surface = shm.publish(key, toy_ess)
        surface.close()
        assert shm.live_offers() == 0
        assert shm.attach_if_offered(
            key, toy_ess.query, toy_ess.cost_model
        ) is None
        surface.close()  # double close must not raise

    def test_lazy_surface_never_published(self, toy_ess):
        from repro.ess.grid import ESSGrid
        from repro.ess.lazy import LazyESS

        grid = ESSGrid(2, resolution=20, sel_min=1e-7)
        lazy = LazyESS(toy_ess.query, grid, cost_model=toy_ess.cost_model)
        assert shm.publish(_key_of(lazy), lazy) is None
        assert shm.live_offers() == 0


class TestTransferredOfferRegistry:
    def test_register_offer_evicts_oldest_beyond_limit(self, monkeypatch):
        monkeypatch.setattr(shm, "_OFFERS", {})
        monkeypatch.setattr(shm, "_OFFER_LIMIT", 3)
        for i in range(5):
            shm.register_offer({"key": ["bound", i], "segments": {}})
        assert shm.live_offers() == 3
        assert shm._digest(["bound", 0]) not in shm._OFFERS
        assert shm._digest(["bound", 1]) not in shm._OFFERS
        assert shm._digest(["bound", 4]) in shm._OFFERS
        # Re-registration refreshes recency: 2 survives the next evict.
        shm.register_offer({"key": ["bound", 2], "segments": {}})
        shm.register_offer({"key": ["bound", 5], "segments": {}})
        assert shm._digest(["bound", 2]) in shm._OFFERS
        assert shm._digest(["bound", 3]) not in shm._OFFERS

    def test_failed_attach_drops_stale_offer(self, toy_ess, monkeypatch):
        monkeypatch.setattr(shm, "_OFFERS", {})
        key = _key_of(toy_ess)
        offer = shm.export_for_transfer(key, toy_ess)
        assert offer is not None
        shm.unlink_offer(offer)    # the owner evicted the segments...
        shm.register_offer(offer)  # ...but a worker still holds the offer
        assert shm.attach_if_offered(
            key, toy_ess.query, toy_ess.cost_model
        ) is None
        # The dead offer is forgotten: later fetches skip the doomed
        # attach and fall straight through to the disk archive.
        assert shm.live_offers() == 0


class TestCacheTier:
    def test_fetch_prefers_shm_over_disk(self, toy_ess, monkeypatch):
        # Disk cache off entirely: a hit can only come from the offer.
        monkeypatch.setenv("REPRO_CACHE", "0")
        key = _key_of(toy_ess)
        surface = shm.publish(key, toy_ess)
        try:
            TIMERS.reset()
            fetched = cache.fetch(key, toy_ess.query, toy_ess.cost_model)
            assert fetched is not None
            assert np.array_equal(fetched.optimal_cost,
                                  toy_ess.optimal_cost)
            assert TIMERS.counter("ess_shm_hit") == 1
        finally:
            surface.close()
        assert cache.fetch(key, toy_ess.query, toy_ess.cost_model) is None


class TestForcedParallelIdentity:
    def test_parallel_sweep_matches_batch(self, isolated_cache,
                                          monkeypatch):
        """End to end: forked workers attach to the parent's published
        surface and the sweep result is bit-identical to serial."""
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        instance = workloads.load("2D_Q42", profile="smoke")
        serial = evaluate_algorithm(
            SpillBound(instance.ess, instance.contours), engine="batch"
        )
        parallel = evaluate_algorithm(
            SpillBound(instance.ess, instance.contours),
            workers=2, engine="parallel",
        )
        assert np.array_equal(serial.suboptimality, parallel.suboptimality)
        assert serial.mso == parallel.mso
        assert serial.worst_location == parallel.worst_location
        # The sweep released its segments on the way out.
        assert shm.live_offers() == 0
