"""Unit tests for ESS persistence (offline preprocessing, Section 7)."""

import copy
import shutil

import numpy as np
import pytest

from repro import ContourSet, OptimizerError, QueryError, SpillBound
from repro.ess.persistence import (
    ess_cache_key,
    load_ess,
    parse_plan_key,
    save_ess,
)
from tests.conftest import make_star_query, make_toy_query


class TestPlanKeyParsing:
    def test_roundtrip_every_posp_plan(self, toy_ess):
        for key in toy_ess.plan_keys:
            plan = parse_plan_key(key, toy_ess.query)
            assert plan.key == key

    def test_parsed_plans_recost_identically(self, toy_ess):
        from repro.optimizer.plans import plan_cost

        env = {0: 1e-4, 1: 1e-4}
        for pid, key in enumerate(toy_ess.plan_keys):
            plan = parse_plan_key(key, toy_ess.query)
            original = plan_cost(toy_ess.plans[pid], toy_ess.query,
                                 toy_ess.cost_model, env)
            parsed = plan_cost(plan, toy_ess.query, toy_ess.cost_model, env)
            assert parsed == pytest.approx(original)

    def test_malformed_key_rejected(self, toy_query):
        with pytest.raises(OptimizerError):
            parse_plan_key("HJ[", toy_query)
        with pytest.raises(OptimizerError):
            parse_plan_key("SEQ(part)garbage", toy_query)

    def test_unknown_predicate_rejected(self, toy_query):
        with pytest.raises(QueryError):
            parse_plan_key(
                "HJ[j:ghost](SEQ(part),SEQ(lineitem))", toy_query
            )


class TestSaveLoad:
    def test_roundtrip_preserves_surface(self, toy_ess, tmp_path):
        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path)
        restored = load_ess(path, toy_ess.query)
        assert np.allclose(restored.optimal_cost, toy_ess.optimal_cost)
        assert np.array_equal(restored.plan_ids, toy_ess.plan_ids)
        assert restored.plan_keys == toy_ess.plan_keys
        for dim in range(2):
            assert np.allclose(restored.grid.values[dim],
                               toy_ess.grid.values[dim])

    def test_restored_ess_drives_discovery(self, toy_ess, toy_sb, tmp_path):
        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path)
        restored = load_ess(path, toy_ess.query)
        sb = SpillBound(restored, ContourSet(restored))
        for flat in [0, 44, 199, 377]:
            assert sb.run(flat).total_cost == pytest.approx(
                toy_sb.run(flat).total_cost
            )

    def test_wrong_query_rejected(self, toy_ess, tmp_path):
        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path)
        other = make_star_query(2)
        with pytest.raises(QueryError):
            load_ess(path, other)

    def test_same_named_query_accepted(self, toy_ess, tmp_path):
        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path)
        fresh_query = make_toy_query()  # equal, separately constructed
        restored = load_ess(path, fresh_query)
        assert restored.posp_size == toy_ess.posp_size


class TestDtypeRoundTrip:
    """Format-v2 archives must round-trip bit-identically whatever
    dtypes the surfaces were built with: the loader canonicalizes to
    float64 costs / int32 plan ids, and the loaded arrays must equal the
    deterministic casts of the saved ones exactly — no value drift."""

    @pytest.mark.parametrize("ids_dtype", [np.int16, np.int32, np.int64])
    @pytest.mark.parametrize("cost_dtype", [np.float32, np.float64])
    def test_roundtrip_exact_across_dtypes(self, toy_ess, tmp_path,
                                           ids_dtype, cost_dtype):
        variant = copy.copy(toy_ess)
        variant.plan_ids = toy_ess.plan_ids.astype(ids_dtype)
        variant.optimal_cost = toy_ess.optimal_cost.astype(cost_dtype)
        path = tmp_path / "variant.npz"
        save_ess(variant, path)
        restored = load_ess(path, toy_ess.query)
        assert restored.optimal_cost.dtype == np.float64
        assert np.array_equal(
            restored.optimal_cost,
            variant.optimal_cost.astype(np.float64),
        )
        assert restored.plan_ids.dtype == np.int32
        assert np.array_equal(
            restored.plan_ids, variant.plan_ids.astype(np.int32)
        )
        assert restored.plan_keys == toy_ess.plan_keys
        for dim in range(toy_ess.grid.num_dims):
            assert np.array_equal(restored.grid.values[dim],
                                  toy_ess.grid.values[dim])

    def test_float64_roundtrip_bit_identical(self, toy_ess, tmp_path):
        path = tmp_path / "exact.npz"
        save_ess(toy_ess, path)
        restored = load_ess(path, toy_ess.query)
        assert np.array_equal(restored.optimal_cost, toy_ess.optimal_cost)
        assert np.array_equal(restored.plan_ids, toy_ess.plan_ids)


class TestMmapArchive:
    """Format-v3 archives: the two large arrays live in uncompressed,
    content-addressed ``.npy`` sidecars that loads memory-map.  The
    format trades a couple of extra files for zero-decompression warm
    loads — and must stay bit-identical to the self-contained v2."""

    def test_v3_roundtrip_bit_identical_and_mmapped(self, toy_ess,
                                                    tmp_path):
        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path, mmap=True)
        restored = load_ess(path, toy_ess.query)
        assert isinstance(restored.optimal_cost, np.memmap)
        assert isinstance(restored.plan_ids, np.memmap)
        assert np.array_equal(restored.optimal_cost, toy_ess.optimal_cost)
        assert np.array_equal(restored.plan_ids, toy_ess.plan_ids)
        assert restored.plan_keys == toy_ess.plan_keys

    def test_restored_mmap_ess_drives_discovery(self, toy_ess, toy_sb,
                                                tmp_path):
        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path, mmap=True)
        restored = load_ess(path, toy_ess.query)
        sb = SpillBound(restored, ContourSet(restored))
        for flat in [0, 44, 199, 377]:
            assert sb.run(flat).total_cost == pytest.approx(
                toy_sb.run(flat).total_cost
            )

    def test_sidecar_names_are_content_addressed(self, toy_ess, tmp_path):
        from repro.ess.persistence import archive_sidecars

        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path, mmap=True)
        first = archive_sidecars(path)
        assert len(first) == 2
        for name in first:
            assert (tmp_path / name).exists()
            assert name.startswith("ess.npz.")
            assert name.endswith(".npy")
        # Same content -> same digest -> a rewrite maps the same files.
        save_ess(toy_ess, path, mmap=True)
        assert archive_sidecars(path) == first

    def test_default_save_is_self_contained_v2(self, toy_ess, tmp_path):
        from repro.ess.persistence import archive_sidecars

        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path)
        assert archive_sidecars(path) == []
        assert list(tmp_path.iterdir()) == [path]

    def test_missing_sidecar_rejected(self, toy_ess, tmp_path):
        from repro.ess.persistence import archive_sidecars

        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path, mmap=True)
        for name in archive_sidecars(path):
            (tmp_path / name).unlink()
        with pytest.raises(FileNotFoundError):
            load_ess(path, toy_ess.query)

    def test_corrupt_sidecar_rejected(self, toy_ess, tmp_path):
        from repro.ess.persistence import archive_sidecars

        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path, mmap=True)
        sidecars = archive_sidecars(path)
        cost_name = next(n for n in sidecars if n.endswith(".cost.npy"))
        np.save(tmp_path / cost_name.removesuffix(".npy"),
                np.zeros(7))  # wrong shape
        with pytest.raises(OptimizerError):
            load_ess(path, toy_ess.query)

    def test_lazy_surface_saves_materialized(self, toy_ess, tmp_path):
        from repro.ess.grid import ESSGrid
        from repro.ess.lazy import LazyESS

        grid = ESSGrid(2, resolution=20, sel_min=1e-7)
        lazy = LazyESS(toy_ess.query, grid,
                       cost_model=toy_ess.cost_model)
        path = tmp_path / "lazy.npz"
        save_ess(lazy, path, mmap=True)
        restored = load_ess(path, toy_ess.query)
        # Costs are mode-invariant; ids are surface-local, so compare
        # the restored ids through the lazy surface's own key table.
        assert np.array_equal(restored.optimal_cost, toy_ess.optimal_cost)
        assert [restored.plan_keys[p] for p in restored.plan_ids] == \
            [lazy.plan_keys[p] for p in np.asarray(lazy.plan_ids)]


class TestCacheRelocation:
    """The persistent ESS cache is content-keyed, so archives survive a
    wholesale relocation of the cache directory (backup/restore, CI
    cache transplant): repointing ``REPRO_CACHE_DIR`` at the moved tree
    must hit, bit-identically."""

    def test_archive_survives_cache_dir_move(self, toy_ess, tmp_path,
                                             monkeypatch):
        from repro.perf import cache

        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        grid = toy_ess.grid
        key = ess_cache_key(
            toy_ess.query.name,
            grid.resolution,
            [float(grid.values[d][0]) for d in range(grid.num_dims)],
            toy_ess.cost_model.fingerprint(),
        )
        assert cache.store(toy_ess, key) is not None
        assert cache.fetch(key, toy_ess.query, toy_ess.cost_model) is not None

        shutil.move(str(tmp_path / "a"), str(tmp_path / "b"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        restored = cache.fetch(key, toy_ess.query, toy_ess.cost_model)
        assert restored is not None
        assert np.array_equal(restored.optimal_cost, toy_ess.optimal_cost)
        assert np.array_equal(restored.plan_ids, toy_ess.plan_ids)
        assert restored.plan_keys == toy_ess.plan_keys

        # The old location is gone: repointing back misses cleanly.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        assert cache.fetch(key, toy_ess.query, toy_ess.cost_model) is None
