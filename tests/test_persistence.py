"""Unit tests for ESS persistence (offline preprocessing, Section 7)."""

import numpy as np
import pytest

from repro import ContourSet, OptimizerError, QueryError, SpillBound
from repro.ess.persistence import load_ess, parse_plan_key, save_ess
from tests.conftest import make_star_query, make_toy_query


class TestPlanKeyParsing:
    def test_roundtrip_every_posp_plan(self, toy_ess):
        for key in toy_ess.plan_keys:
            plan = parse_plan_key(key, toy_ess.query)
            assert plan.key == key

    def test_parsed_plans_recost_identically(self, toy_ess):
        from repro.optimizer.plans import plan_cost

        env = {0: 1e-4, 1: 1e-4}
        for pid, key in enumerate(toy_ess.plan_keys):
            plan = parse_plan_key(key, toy_ess.query)
            original = plan_cost(toy_ess.plans[pid], toy_ess.query,
                                 toy_ess.cost_model, env)
            parsed = plan_cost(plan, toy_ess.query, toy_ess.cost_model, env)
            assert parsed == pytest.approx(original)

    def test_malformed_key_rejected(self, toy_query):
        with pytest.raises(OptimizerError):
            parse_plan_key("HJ[", toy_query)
        with pytest.raises(OptimizerError):
            parse_plan_key("SEQ(part)garbage", toy_query)

    def test_unknown_predicate_rejected(self, toy_query):
        with pytest.raises(QueryError):
            parse_plan_key(
                "HJ[j:ghost](SEQ(part),SEQ(lineitem))", toy_query
            )


class TestSaveLoad:
    def test_roundtrip_preserves_surface(self, toy_ess, tmp_path):
        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path)
        restored = load_ess(path, toy_ess.query)
        assert np.allclose(restored.optimal_cost, toy_ess.optimal_cost)
        assert np.array_equal(restored.plan_ids, toy_ess.plan_ids)
        assert restored.plan_keys == toy_ess.plan_keys
        for dim in range(2):
            assert np.allclose(restored.grid.values[dim],
                               toy_ess.grid.values[dim])

    def test_restored_ess_drives_discovery(self, toy_ess, toy_sb, tmp_path):
        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path)
        restored = load_ess(path, toy_ess.query)
        sb = SpillBound(restored, ContourSet(restored))
        for flat in [0, 44, 199, 377]:
            assert sb.run(flat).total_cost == pytest.approx(
                toy_sb.run(flat).total_cost
            )

    def test_wrong_query_rejected(self, toy_ess, tmp_path):
        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path)
        other = make_star_query(2)
        with pytest.raises(QueryError):
            load_ess(path, other)

    def test_same_named_query_accepted(self, toy_ess, tmp_path):
        path = tmp_path / "ess.npz"
        save_ess(toy_ess, path)
        fresh_query = make_toy_query()  # equal, separately constructed
        restored = load_ess(path, fresh_query)
        assert restored.posp_size == toy_ess.posp_size
