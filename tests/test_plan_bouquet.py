"""Unit tests for the PlanBouquet baseline."""

import numpy as np
import pytest

from repro import ContourSet, PlanBouquet, evaluate_algorithm


class TestGuarantee:
    def test_formula(self, toy_pb):
        assert toy_pb.mso_guarantee() == pytest.approx(
            4.0 * 1.2 * toy_pb.rho
        )

    def test_rho_positive(self, toy_pb):
        assert toy_pb.rho >= 1

    def test_empirical_within_guarantee(self, toy_pb):
        evaluation = evaluate_algorithm(toy_pb)
        assert evaluation.mso <= toy_pb.mso_guarantee() * (1 + 1e-9)

    def test_bouquet_plan_ids_unique(self, toy_pb):
        ids = toy_pb.bouquet_plan_ids()
        assert len(ids) == len(set(ids))


class TestExecutionSemantics:
    def test_terminates_everywhere(self, toy_pb, toy_ess):
        for flat in range(0, toy_ess.grid.num_points, 13):
            result = toy_pb.run(flat)
            assert result.total_cost > 0
            assert result.completed_plan_key

    def test_suboptimality_at_least_one(self, toy_pb, toy_ess):
        for flat in [0, 7, 99, toy_ess.grid.num_points - 1]:
            assert toy_pb.run(flat).suboptimality >= 1.0 - 1e-9

    def test_origin_completes_immediately(self, toy_pb, toy_ess):
        origin = toy_ess.grid.flat_index(toy_ess.grid.origin)
        result = toy_pb.run(origin, trace=True)
        assert result.executions[0].completed or result.num_executions <= (
            toy_pb.reduction.contour(1).density
        )
        assert result.contours_visited == 1

    def test_trace_budget_accounting(self, toy_pb):
        result = toy_pb.run(150, trace=True)
        for record in result.executions[:-1]:
            assert not record.completed
            assert record.charged == pytest.approx(record.budget)
        final = result.executions[-1]
        assert final.completed
        assert final.charged <= final.budget * (1 + 1e-9)
        assert result.total_cost == pytest.approx(
            sum(r.charged for r in result.executions)
        )

    def test_completion_requires_reaching_qa_band(self, toy_pb, toy_contours):
        flat = 250
        result = toy_pb.run(flat)
        assert result.contours_visited >= toy_contours.band_of(flat) - 1

    def test_plans_execute_in_contour_order(self, toy_pb):
        result = toy_pb.run(300, trace=True)
        contour_sequence = [r.contour for r in result.executions]
        assert contour_sequence == sorted(contour_sequence)


class TestVectorizedSweep:
    def test_matches_scalar_runs(self, toy_pb, toy_ess):
        sweep = toy_pb.evaluate_all()
        for flat in range(0, toy_ess.grid.num_points, 17):
            assert sweep[flat] == pytest.approx(
                toy_pb.run(flat).suboptimality
            )

    def test_all_locations_finite(self, toy_pb):
        sweep = toy_pb.evaluate_all()
        assert np.isfinite(sweep).all()
        assert (sweep >= 1.0 - 1e-9).all()


class TestLambdaVariants:
    def test_larger_lambda_smaller_rho(self, toy_ess, toy_contours):
        tight = PlanBouquet(toy_ess, toy_contours, lam=0.0)
        loose = PlanBouquet(toy_ess, toy_contours, lam=1.0)
        assert loose.rho <= tight.rho

    def test_custom_contour_ratio(self, toy_ess):
        contours = ContourSet(toy_ess, cost_ratio=3.0)
        pb = PlanBouquet(toy_ess, contours)
        evaluation = evaluate_algorithm(pb)
        assert evaluation.mso <= 4.0 * 1.2 * pb.rho * 3.0  # coarse sanity
