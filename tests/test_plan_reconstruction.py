"""Deduplicated plan reconstruction must match per-point recursion.

``OptimizationResult.plans()`` groups grid locations by their signature
of load-bearing DP choice entries and rebuilds one plan tree per
distinct signature; these tests pin its exact equivalence to the naive
``plan_at`` recursion at every location.
"""

import numpy as np

from repro import ESSGrid
from repro.optimizer.optimizer import Optimizer
from tests.conftest import make_star_query, make_toy_query


def _sweep(query, num_dims, resolution):
    grid = ESSGrid(num_dims, resolution=resolution, sel_min=1e-6)
    optimizer = Optimizer(query)
    result = optimizer.optimize(grid.environment(),
                                num_points=grid.num_points)
    return grid, result


class TestDedupReconstruction:
    def test_matches_per_point_recursion_toy(self):
        grid, result = _sweep(make_toy_query(), 2, 16)
        keys, pool = result.plans()
        for point in range(grid.num_points):
            assert keys[point] == result.plan_at(point).key

    def test_matches_per_point_recursion_star(self):
        grid, result = _sweep(make_star_query(3), 3, 7)
        keys, pool = result.plans()
        for point in range(grid.num_points):
            assert keys[point] == result.plan_at(point).key

    def test_pool_contains_exactly_the_full_plans(self):
        grid, result = _sweep(make_star_query(3), 3, 7)
        keys, pool = result.plans()
        assert set(keys) == set(pool)
        full_tables = result._optimizer.all_tables
        for plan in pool.values():
            assert plan.tables == full_tables

    def test_single_point_sweep(self):
        query = make_toy_query()
        optimizer = Optimizer(query)
        result = optimizer.optimize({0: 1e-4, 1: 1e-3}, num_points=1)
        keys, pool = result.plans()
        assert len(keys) == 1
        assert keys[0] == result.plan_at(0).key

    def test_left_deep_space(self):
        query = make_toy_query()
        grid = ESSGrid(2, resolution=12, sel_min=1e-6)
        optimizer = Optimizer(query, left_deep=True)
        result = optimizer.optimize(grid.environment(),
                                    num_points=grid.num_points)
        keys, _ = result.plans()
        for point in range(grid.num_points):
            assert keys[point] == result.plan_at(point).key
