"""Unit tests for plan trees: identity, costing, pipelines, spill order."""

import numpy as np
import pytest

from repro import DEFAULT_COST_MODEL, OptimizerError
from repro.optimizer.plans import (
    HASH_JOIN,
    INDEX_NL_JOIN,
    INDEX_SCAN,
    MERGE_JOIN,
    NL_JOIN,
    SEQ_SCAN,
    JoinNode,
    ScanNode,
    epp_total_order,
    execution_order,
    find_epp_node,
    pipelines,
    plan_cost,
    plan_node_costs,
    spill_dimension,
    spill_subtree_cost,
)
from tests.conftest import make_toy_query


@pytest.fixture
def query():
    return make_toy_query()


@pytest.fixture
def plan(query):
    """HJ( HJ(SEQ(lineitem), SEQ(part)), SEQ(orders) )."""
    part = ScanNode("part", SEQ_SCAN, query.filters_on("part"))
    lineitem = ScanNode("lineitem", SEQ_SCAN)
    orders = ScanNode("orders", SEQ_SCAN)
    inner = JoinNode(HASH_JOIN, lineitem, part, [query.joins[0]])
    return JoinNode(HASH_JOIN, inner, orders, [query.joins[1]])


class TestStructure:
    def test_tables_propagate(self, plan):
        assert plan.tables == {"part", "lineitem", "orders"}
        assert plan.outer.tables == {"part", "lineitem"}

    def test_canonical_key_is_deterministic(self, query, plan):
        part = ScanNode("part", SEQ_SCAN, query.filters_on("part"))
        lineitem = ScanNode("lineitem", SEQ_SCAN)
        orders = ScanNode("orders", SEQ_SCAN)
        inner = JoinNode(HASH_JOIN, lineitem, part, [query.joins[0]])
        again = JoinNode(HASH_JOIN, inner, orders, [query.joins[1]])
        assert again.key == plan.key

    def test_key_distinguishes_operators(self, query, plan):
        other = JoinNode(MERGE_JOIN, plan.outer, plan.inner,
                         plan.applied_preds)
        assert other.key != plan.key

    def test_join_requires_predicate(self, plan):
        with pytest.raises(OptimizerError):
            JoinNode(HASH_JOIN, plan.outer, plan.inner, [])

    def test_iter_nodes_counts(self, plan):
        assert len(list(plan.iter_nodes())) == 5


class TestCosting:
    def test_cost_positive_and_scalar(self, query, plan):
        cost = plan_cost(plan, query, DEFAULT_COST_MODEL, {0: 1e-6, 1: 1e-6})
        assert np.isscalar(cost) or cost.shape == ()
        assert cost > 0

    def test_cost_vectorized_matches_scalar(self, query, plan):
        sels = np.array([1e-6, 1e-4, 1e-2])
        vector = plan_cost(plan, query, DEFAULT_COST_MODEL,
                           {0: sels, 1: 1e-5})
        for i, s in enumerate(sels):
            scalar = plan_cost(plan, query, DEFAULT_COST_MODEL,
                               {0: float(s), 1: 1e-5})
            assert vector[i] == pytest.approx(scalar)

    def test_cost_monotone_in_each_dim(self, query, plan):
        sels = np.geomspace(1e-7, 1, 30)
        costs0 = plan_cost(plan, query, DEFAULT_COST_MODEL, {0: sels, 1: 1e-4})
        costs1 = plan_cost(plan, query, DEFAULT_COST_MODEL, {0: 1e-4, 1: sels})
        assert (np.diff(costs0) > 0).all()
        assert (np.diff(costs1) > 0).all()

    def test_missing_epp_env_raises(self, query, plan):
        from repro import QueryError

        with pytest.raises(QueryError):
            plan_cost(plan, query, DEFAULT_COST_MODEL, {0: 1e-5})

    def test_node_costs_sum_to_plan_cost(self, query, plan):
        env = {0: 1e-5, 1: 1e-5}
        parts = plan_node_costs(plan, query, DEFAULT_COST_MODEL, env)
        assert sum(parts.values()) == pytest.approx(
            plan_cost(plan, query, DEFAULT_COST_MODEL, env)
        )

    def test_inl_inner_scan_costs_nothing(self, query):
        part = ScanNode("part", INDEX_SCAN, query.filters_on("part"))
        lineitem = ScanNode("lineitem", SEQ_SCAN)
        inl = JoinNode(INDEX_NL_JOIN, lineitem, part, [query.joins[0]])
        costs = plan_node_costs(inl, query, DEFAULT_COST_MODEL,
                                {0: 1e-6, 1: 1e-6})
        assert costs[id(part)] == 0.0


class TestPipelines:
    def test_execution_order_post_order(self, plan):
        order = execution_order(plan)
        assert order[-1] is plan
        positions = {id(node): i for i, node in enumerate(order)}
        for node in plan.iter_nodes():
            for child in node.children:
                assert positions[id(child)] < positions[id(node)]

    def test_hash_build_completes_before_probe_side(self, plan):
        order = execution_order(plan)
        positions = {id(node): i for i, node in enumerate(order)}
        # plan.inner (orders scan) is the build of the top join: it must
        # complete before the probe subtree's own completion point.
        assert positions[id(plan.inner)] < positions[id(plan.outer)]

    def test_pipelines_partition_nodes(self, plan):
        groups = pipelines(plan)
        flat = [node for group in groups for node in group]
        assert len(flat) == len(list(plan.iter_nodes()))
        assert len(set(map(id, flat))) == len(flat)

    def test_hash_join_breaks_pipeline_at_build(self, plan):
        groups = pipelines(plan)
        by_node = {}
        for gi, group in enumerate(groups):
            for node in group:
                by_node[id(node)] = gi
        # The build child lives in a different pipeline from its parent.
        assert by_node[id(plan.inner)] != by_node[id(plan)]
        # The probe child streams into its parent: same pipeline.
        assert by_node[id(plan.outer)] == by_node[id(plan)]

    def test_merge_join_blocks_both_sides(self, query):
        part = ScanNode("part", SEQ_SCAN, query.filters_on("part"))
        lineitem = ScanNode("lineitem", SEQ_SCAN)
        merge = JoinNode(MERGE_JOIN, lineitem, part, [query.joins[0]])
        groups = pipelines(merge)
        assert len(groups) == 3  # two sort inputs + the merge itself


class TestSpillOrder:
    def test_total_order_contains_all_epps(self, query, plan):
        order = epp_total_order(plan, query)
        assert set(order) == {"j:part-lineitem", "j:orders-lineitem"}

    def test_upstream_epp_first(self, query, plan):
        order = epp_total_order(plan, query)
        # The part-lineitem join is upstream of orders-lineitem here.
        assert order.index("j:part-lineitem") < order.index(
            "j:orders-lineitem"
        )

    def test_spill_dimension_respects_remaining(self, query, plan):
        assert spill_dimension(plan, query, {0, 1}) == 0
        assert spill_dimension(plan, query, {1}) == 1
        assert spill_dimension(plan, query, set()) is None

    def test_find_epp_node(self, plan):
        node = find_epp_node(plan, "j:orders-lineitem")
        assert node is plan
        assert find_epp_node(plan, "j:ghost") is None

    def test_spill_subtree_cheaper_than_plan(self, query, plan):
        env = {0: 1e-4, 1: 1e-4}
        sub = spill_subtree_cost(plan, query, DEFAULT_COST_MODEL, env,
                                 "j:part-lineitem")
        full = plan_cost(plan, query, DEFAULT_COST_MODEL, env)
        assert sub < full

    def test_spill_subtree_of_root_equals_plan_cost(self, query, plan):
        env = {0: 1e-4, 1: 1e-4}
        sub = spill_subtree_cost(plan, query, DEFAULT_COST_MODEL, env,
                                 "j:orders-lineitem")
        full = plan_cost(plan, query, DEFAULT_COST_MODEL, env)
        assert sub == pytest.approx(full)

    def test_spill_unknown_epp_raises(self, query, plan):
        with pytest.raises(OptimizerError):
            spill_subtree_cost(plan, query, DEFAULT_COST_MODEL,
                               {0: 1e-4, 1: 1e-4}, "j:ghost")
