"""Unit tests for the predicate model."""

import pytest

from repro import FilterPredicate, JoinPredicate, QueryError, filter_pred, join


class TestFilterPredicate:
    def test_basic(self):
        pred = filter_pred("t", "c", "<", 10, selectivity=0.3)
        assert pred.tables == ("t",)
        assert not pred.error_prone
        assert pred.name == "f:t.c"

    def test_custom_name(self):
        pred = filter_pred("t", "c", "=", 1, selectivity=0.1, name="myf")
        assert pred.name == "myf"

    def test_rejects_bad_op(self):
        with pytest.raises(QueryError):
            filter_pred("t", "c", "like", "x", selectivity=0.1)

    @pytest.mark.parametrize("sel", [0.0, -0.1, 1.5])
    def test_rejects_bad_selectivity(self, sel):
        with pytest.raises(QueryError):
            filter_pred("t", "c", "=", 1, selectivity=sel)

    def test_between_describe(self):
        pred = filter_pred("t", "c", "between", (1, 5), selectivity=0.2)
        assert "between" in pred.describe()

    def test_error_prone_flag(self):
        pred = filter_pred("t", "c", "=", 1, selectivity=0.1, error_prone=True)
        assert pred.error_prone

    def test_frozen(self):
        pred = filter_pred("t", "c", "=", 1, selectivity=0.1)
        with pytest.raises(AttributeError):
            pred.selectivity = 0.5


class TestJoinPredicate:
    def test_basic(self):
        pred = join("a", "x", "b", "y", selectivity=1e-3)
        assert pred.tables == ("a", "b")
        assert pred.name == "j:a-b"

    def test_rejects_self_join_same_alias(self):
        with pytest.raises(QueryError):
            join("a", "x", "a", "y", selectivity=0.1)

    @pytest.mark.parametrize("sel", [0.0, -1.0, 2.0])
    def test_rejects_bad_selectivity(self, sel):
        with pytest.raises(QueryError):
            join("a", "x", "b", "y", selectivity=sel)

    def test_other_table(self):
        pred = join("a", "x", "b", "y", selectivity=0.5)
        assert pred.other_table("a") == "b"
        assert pred.other_table("b") == "a"
        with pytest.raises(QueryError):
            pred.other_table("c")

    def test_column_for(self):
        pred = join("a", "x", "b", "y", selectivity=0.5)
        assert pred.column_for("a") == "x"
        assert pred.column_for("b") == "y"
        with pytest.raises(QueryError):
            pred.column_for("z")

    def test_describe(self):
        pred = join("a", "x", "b", "y", selectivity=0.5)
        assert pred.describe() == "a.x = b.y"

    def test_selectivity_one_allowed(self):
        pred = join("a", "x", "b", "y", selectivity=1.0)
        assert pred.selectivity == 1.0

    def test_hashable(self):
        p1 = join("a", "x", "b", "y", selectivity=0.5)
        p2 = join("a", "x", "b", "y", selectivity=0.5)
        assert hash(p1) == hash(p2) and p1 == p2
