"""Unit tests for the selectivity-prior package.

Covers the prior classes themselves (pmf shape/normalization, spec
round trips, the history store), the :class:`PriorSchedule` decisions
(band clamp, quantile targeting, ordering stability), the two new
conformance invariants, the CLI's source-attributing choice resolver,
and the serving protocol's ``prior`` field.
"""

import json
import os

import numpy as np
import pytest

from repro.cli import main, resolve_choice
from repro.conformance.monitors import ConformanceMonitor
from repro.conformance.workloads import build_conformance_instance
from repro.core.plan_bouquet import PlanBouquet
from repro.core.spill_bound import SpillBound
from repro.errors import ReproError
from repro.prior import (
    DEFAULT_QUANTILE,
    HistoryPrior,
    HistoryStore,
    PriorSchedule,
    SampledPrior,
    UniformPrior,
    as_prior,
    history_key,
    make_prior,
    prior_from_spec,
)
from repro.serve.protocol import ProtocolError, parse_discover


@pytest.fixture(scope="module")
def instance():
    return build_conformance_instance(7)


# ----------------------------------------------------------------------
# Prior classes
# ----------------------------------------------------------------------


def test_uniform_prior_is_inert(instance):
    prior = UniformPrior()
    assert not prior.is_active
    assert prior.pmf(instance.ess.grid) is None
    assert prior.spec() == ("uniform",)


def test_sampled_prior_pmf_normalized(instance):
    prior = SampledPrior.fit(instance.query)
    pmf = prior.pmf(instance.ess.grid)
    assert len(pmf) == len(instance.ess.grid.resolution)
    for d, vector in enumerate(pmf):
        assert vector.shape == (instance.ess.grid.resolution[d],)
        assert vector.min() > 0.0  # floor mass: never a zeroed slice
        assert np.isclose(vector.sum(), 1.0)


def test_sampled_fit_deterministic(instance):
    a = SampledPrior.fit(instance.query)
    b = SampledPrior.fit(instance.query)
    assert a.params == b.params


def test_sampled_spec_roundtrip_bit_identical(instance):
    prior = SampledPrior.fit(instance.query)
    rebuilt = prior_from_spec(prior.spec())
    assert isinstance(rebuilt, SampledPrior)
    for a, b in zip(prior.pmf(instance.ess.grid),
                    rebuilt.pmf(instance.ess.grid)):
        assert np.array_equal(a, b)


def test_history_prior_empty_is_inert(instance):
    prior = HistoryPrior(())
    assert prior.is_active  # kind-active...
    assert prior.pmf(instance.ess.grid) is None  # ...but schedule-inert
    schedule = PriorSchedule(prior, instance.ess, instance.contours)
    assert not schedule.active
    assert schedule.start_for(0) == 1


def test_history_store_roundtrip(tmp_path, instance):
    store = HistoryStore(str(tmp_path / "h.jsonl"))
    key = history_key(instance.query, instance.ess)
    qa = instance.query.true_location()
    store.record(key, qa)
    store.record("other:key", qa)
    rows = store.observations(key, len(qa))
    assert rows == [tuple(float(v) for v in qa)]
    prior = HistoryPrior.from_store(store, key, len(qa))
    assert prior.pmf(instance.ess.grid) is not None


def test_history_store_tolerates_garbage(tmp_path, instance):
    path = tmp_path / "h.jsonl"
    key = history_key(instance.query, instance.ess)
    qa = instance.query.true_location()
    HistoryStore(str(path)).record(key, qa)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("not json\n")
        handle.write(json.dumps({"key": key, "sel": [0.5]}) + "\n")
    rows = HistoryStore(str(path)).observations(key, len(qa))
    assert len(rows) == 1
    assert HistoryStore(str(tmp_path / "absent.jsonl")).observations(
        key, len(qa)) == []


def test_history_spec_roundtrip(tmp_path, instance):
    store = HistoryStore(str(tmp_path / "h.jsonl"))
    key = history_key(instance.query, instance.ess)
    store.record(key, instance.query.true_location())
    prior = HistoryPrior.from_store(store, key, instance.query.num_epps)
    rebuilt = prior_from_spec(prior.spec())
    for a, b in zip(prior.pmf(instance.ess.grid),
                    rebuilt.pmf(instance.ess.grid)):
        assert np.array_equal(a, b)


def test_as_prior_and_make_prior(instance):
    assert isinstance(as_prior(None), UniformPrior)
    sampled = SampledPrior.fit(instance.query)
    assert as_prior(sampled) is sampled
    assert isinstance(as_prior(("uniform",)), UniformPrior)
    with pytest.raises(ReproError):
        as_prior(3.14)
    assert isinstance(make_prior(None), UniformPrior)
    assert isinstance(make_prior("uniform"), UniformPrior)
    with pytest.raises(ReproError):
        make_prior("bogus")
    with pytest.raises(ReproError):
        make_prior("sampled")  # needs a query context


def test_prior_from_spec_rejects_malformed():
    with pytest.raises(ReproError):
        prior_from_spec(("mystery", 1))
    with pytest.raises(ReproError):
        prior_from_spec("sampled")
    assert isinstance(prior_from_spec(None), UniformPrior)


# ----------------------------------------------------------------------
# PriorSchedule decisions
# ----------------------------------------------------------------------


def test_schedule_start_clamped_to_band(instance):
    prior = SampledPrior.fit(instance.query)
    schedule = PriorSchedule(prior, instance.ess, instance.contours)
    assert schedule.active
    assert 1 <= schedule.start_target <= instance.contours.num_contours
    for flat in range(0, instance.ess.grid.num_points,
                      max(1, instance.ess.grid.num_points // 50)):
        band = schedule.qa_band(flat)
        start = schedule.start_for(flat)
        assert 1 <= start <= band
        assert start <= schedule.start_target
    starts = schedule.start_array(
        np.arange(instance.ess.grid.num_points, dtype=np.int64))
    bands = schedule._bands(
        np.arange(instance.ess.grid.num_points, dtype=np.int64))
    assert np.all(starts >= 1)
    assert np.all(starts <= bands)


def test_schedule_quantile_moves_target(instance):
    low = PriorSchedule(SampledPrior.fit(instance.query, quantile=0.01),
                        instance.ess, instance.contours)
    high = PriorSchedule(SampledPrior.fit(instance.query, quantile=0.99),
                         instance.ess, instance.contours)
    assert low.start_target <= high.start_target


def test_schedule_order_steps_stable(instance):
    sb = SpillBound(instance.ess, instance.contours,
                    prior=SampledPrior.fit(instance.query))
    schedule = sb.prior_schedule()
    for index in range(1, instance.contours.num_contours + 1):
        steps = sb.contour_steps(index, learned={})
        probs = [schedule.completion_prob(s.exec_dim, s.learn_idx)
                 for s in steps]
        assert probs == sorted(probs, reverse=True)


def test_schedule_inert_returns_same_objects(instance):
    schedule = PriorSchedule(UniformPrior(), instance.ess,
                             instance.contours)
    steps = ["a", "b"]
    assert schedule.order_steps(steps) is steps
    pb = PlanBouquet(instance.ess, instance.contours)
    for rc in pb.reduction.reduced:
        assert pb.contour_plans(rc) is rc.plan_ids


def test_schedule_plan_order_is_permutation(instance):
    pb = PlanBouquet(instance.ess, instance.contours,
                     prior=SampledPrior.fit(instance.query))
    for rc in pb.reduction.reduced:
        ordered = pb.contour_plans(rc)
        assert sorted(ordered) == sorted(rc.plan_ids)
        # cached: second call returns the same ordering
        assert pb.contour_plans(rc) == ordered


# ----------------------------------------------------------------------
# Conformance monitors
# ----------------------------------------------------------------------


def test_monitor_prior_inertness_fires_on_mismatch(instance):
    monitor = ConformanceMonitor()
    sb = SpillBound(instance.ess, instance.contours)
    ref = np.ones(4, dtype=float)
    assert monitor.check_prior_inertness(ref, ref.copy(), sb)
    tampered = ref.copy()
    tampered[2] = 1.5
    with monitor.context(seed=0):
        assert not monitor.check_prior_inertness(ref, tampered, sb)
    assert monitor.counters.get("violations[prior-inert]", 0) == 1


def test_monitor_ladder_start_fires_below_schedule(instance):
    monitor = ConformanceMonitor()
    sb = SpillBound(instance.ess, instance.contours,
                    prior=SampledPrior.fit(instance.query))
    flat = instance.ess.grid.num_points - 1
    result = sb.run(flat, trace=True)
    with monitor.context(seed=0):
        monitor.check_run(result, sb, engine="loop")
    assert monitor.counters.get("violations[ladder-start]", 0) == 0
    # Tamper: pretend the run started below the schedule's start.
    schedule = sb.prior_schedule()
    start = schedule.start_for(flat)
    if start > 1:
        import dataclasses

        first = result.executions[0]
        result.executions = (
            [dataclasses.replace(first, contour=1)]
            + list(result.executions)
        )
        with monitor.context(seed=0):
            monitor.check_run(result, sb, engine="loop")
        assert monitor.counters.get("violations[ladder-start]", 0) >= 1


# ----------------------------------------------------------------------
# CLI choice resolution (flag vs env attribution)
# ----------------------------------------------------------------------


def test_resolve_choice_flag_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_PRIOR", "history")
    assert resolve_choice("sampled", "--prior", "REPRO_PRIOR",
                          ("uniform", "sampled", "history"),
                          default="uniform") == "sampled"


def test_resolve_choice_env_fallback_and_default(monkeypatch):
    monkeypatch.setenv("REPRO_PRIOR", "history")
    assert resolve_choice(None, "--prior", "REPRO_PRIOR",
                          ("uniform", "sampled", "history"),
                          default="uniform") == "history"
    monkeypatch.delenv("REPRO_PRIOR")
    assert resolve_choice(None, "--prior", "REPRO_PRIOR",
                          ("uniform", "sampled", "history"),
                          default="uniform") == "uniform"


def test_resolve_choice_names_flag_source():
    with pytest.raises(ReproError) as err:
        resolve_choice("bogus", "--prior", "REPRO_PRIOR",
                       ("uniform", "sampled", "history"), what="prior")
    assert "from --prior" in str(err.value)
    assert "bogus" in str(err.value)


def test_resolve_choice_names_env_source(monkeypatch):
    monkeypatch.setenv("REPRO_PRIOR", "bogus")
    with pytest.raises(ReproError) as err:
        resolve_choice(None, "--prior", "REPRO_PRIOR",
                       ("uniform", "sampled", "history"), what="prior")
    assert "from REPRO_PRIOR" in str(err.value)


def test_cli_rejects_bad_prior_flag(capsys):
    assert main(["run", "2D_Q91", "--prior", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "from --prior" in err


def test_cli_rejects_bad_prior_env(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_PRIOR", "bogus")
    assert main(["run", "2D_Q91"]) == 2
    err = capsys.readouterr().err
    assert "from REPRO_PRIOR" in err


def test_cli_rejects_bad_engine_env(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
    assert main(["wallclock", "--rows", "100"]) == 2
    err = capsys.readouterr().err
    assert "from REPRO_ENGINE" in err


def test_cli_rejects_bad_ess_env(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_ESS", "psychic")
    assert main(["run", "2D_Q91"]) == 2
    err = capsys.readouterr().err
    assert "from REPRO_ESS" in err


def test_cli_run_with_sampled_prior(capsys):
    assert main(["run", "2D_Q91", "--prior", "sampled"]) == 0
    out = capsys.readouterr().out
    assert "sub-optimality" in out


def test_cli_run_records_history(tmp_path, monkeypatch, capsys):
    store_path = tmp_path / "store.jsonl"
    monkeypatch.setenv("REPRO_PRIOR_STORE", str(store_path))
    assert main(["run", "2D_Q91", "--prior", "history"]) == 0
    capsys.readouterr()
    assert store_path.exists()
    lines = store_path.read_text().strip().splitlines()
    assert len(lines) == 1
    # A second run now has one observation to schedule from.
    assert main(["run", "2D_Q91", "--prior", "history"]) == 0
    assert len(store_path.read_text().strip().splitlines()) == 2


# ----------------------------------------------------------------------
# Serving protocol
# ----------------------------------------------------------------------


def test_protocol_accepts_prior_modes():
    for mode in (None, "uniform", "sampled", "history"):
        payload = {"query": "2D_Q91"}
        if mode is not None:
            payload["prior"] = mode
        request = parse_discover(payload)
        assert request.prior == mode


def test_protocol_rejects_unknown_prior():
    with pytest.raises(ProtocolError) as err:
        parse_discover({"query": "2D_Q91", "prior": "bogus"})
    assert "prior" in str(err.value)


def test_serve_config_prior(monkeypatch):
    from repro.serve.server import ServeConfig

    assert ServeConfig.from_env().prior == "uniform"
    assert ServeConfig.from_env(prior="sampled").prior == "sampled"
    monkeypatch.setenv("REPRO_PRIOR", "history")
    assert ServeConfig.from_env().prior == "history"
    monkeypatch.setenv("REPRO_PRIOR", "bogus")
    with pytest.raises(ReproError):
        ServeConfig.from_env()


def test_prior_store_env_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PRIOR_STORE", str(tmp_path / "s.jsonl"))
    assert HistoryStore().path == str(tmp_path / "s.jsonl")
