"""Differential suite: the uniform prior is an exact no-op.

Every (algorithm x engine x surface-mode) combination must produce a
sub-optimality sweep bit-identical to the plain no-prior construction
— ``np.array_equal``, not allclose.  This is the contract that lets
the prior ride inside the default constructors without a conformance
cost: scheduling only ever changes when a prior has actual mass.
"""

import os

import numpy as np
import pytest

from repro.conformance.workloads import build_conformance_instance
from repro.core.aligned_bound import AlignedBound
from repro.core.mso import evaluate_algorithm
from repro.core.plan_bouquet import PlanBouquet
from repro.core.spill_bound import SpillBound
from repro.prior import HistoryPrior, UniformPrior

from tests.conftest import fuzz_seeds

ALGORITHMS = {"pb": PlanBouquet, "sb": SpillBound, "ab": AlignedBound}

SEEDS = fuzz_seeds([11, 29])


def _forced_parallel(algorithm):
    from repro.perf.parallel import parallel_suboptimality, spec_for

    spec = spec_for(algorithm)
    assert spec is not None
    flats = list(range(algorithm.ess.grid.num_points))
    os.environ["REPRO_FORCE_PARALLEL"] = "1"
    try:
        return parallel_suboptimality(spec, flats, 2)
    finally:
        os.environ.pop("REPRO_FORCE_PARALLEL", None)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize("ess_mode", ["eager", "lazy"])
def test_uniform_prior_bit_identical_loop_and_batch(seed, algo, ess_mode):
    instance = build_conformance_instance(seed, ess_mode=ess_mode)
    cls = ALGORITHMS[algo]
    plain = cls(instance.ess, instance.contours)
    uniform = cls(instance.ess, instance.contours, prior=UniformPrior())
    for engine in ("loop", "batch"):
        ref = evaluate_algorithm(plain, engine=engine).suboptimality
        twin = evaluate_algorithm(uniform, engine=engine).suboptimality
        assert np.array_equal(ref, twin), (
            f"uniform prior changed {algo}/{engine} output"
        )


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_uniform_prior_bit_identical_parallel(algo):
    instance = build_conformance_instance(SEEDS[0])
    cls = ALGORITHMS[algo]
    plain = cls(instance.ess, instance.contours)
    uniform = cls(instance.ess, instance.contours, prior=UniformPrior())
    ref = _forced_parallel(plain)
    twin = _forced_parallel(uniform)
    if ref is None or twin is None:
        pytest.skip("parallel path unavailable on this host")
    assert np.array_equal(ref, twin)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_empty_history_prior_bit_identical(algo):
    """A history prior with no observations schedules exactly uniform."""
    instance = build_conformance_instance(SEEDS[0])
    cls = ALGORITHMS[algo]
    plain = cls(instance.ess, instance.contours)
    empty = cls(instance.ess, instance.contours, prior=HistoryPrior(()))
    for engine in ("loop", "batch"):
        ref = evaluate_algorithm(plain, engine=engine).suboptimality
        twin = evaluate_algorithm(empty, engine=engine).suboptimality
        assert np.array_equal(ref, twin)


@pytest.mark.parametrize("seed", SEEDS)
def test_uniform_prior_identical_traced_runs(seed):
    """Per-execution traces, not just totals, are unchanged."""
    instance = build_conformance_instance(seed)
    for cls in ALGORITHMS.values():
        plain = cls(instance.ess, instance.contours)
        uniform = cls(instance.ess, instance.contours,
                      prior=UniformPrior())
        for flat in (0, instance.ess.grid.num_points - 1):
            a = plain.run(flat, trace=True)
            b = uniform.run(flat, trace=True)
            assert a.total_cost == b.total_cost
            assert len(a.executions) == len(b.executions)
            for ra, rb in zip(a.executions, b.executions):
                assert (ra.contour, ra.plan_id, ra.mode, ra.budget,
                        ra.charged) == \
                       (rb.contour, rb.plan_id, rb.mode, rb.budget,
                        rb.charged)
