"""Active-prior scheduling: improvement, invariants, engine identity.

The other half of the prior contract (the inert half lives in
``test_prior_inertness.py``): with a *sampled* or *history* prior the
schedule may change — but all engines must change identically, every
MSO-machinery invariant must still hold, and the average-case
discovery cost at likely locations must actually drop.  Also covers
the v7 bench cell and the cross-PR trajectory merger.
"""

import json
import os

import numpy as np
import pytest

from repro.conformance.monitors import ConformanceMonitor
from repro.conformance.suite import run_workload
from repro.conformance.workloads import build_conformance_instance
from repro.core.aligned_bound import AlignedBound
from repro.core.mso import evaluate_algorithm
from repro.core.plan_bouquet import PlanBouquet
from repro.core.spill_bound import SpillBound
from repro.prior import SampledPrior

from tests.conftest import fuzz_seeds

ALGORITHMS = {"pb": PlanBouquet, "sb": SpillBound, "ab": AlignedBound}

SEEDS = fuzz_seeds([3, 17])


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_active_prior_engines_bit_identical(seed, algo):
    """loop and batch agree point-for-point under an active prior."""
    instance = build_conformance_instance(seed)
    algorithm = ALGORITHMS[algo](
        instance.ess, instance.contours,
        prior=SampledPrior.fit(instance.query))
    assert algorithm.prior_schedule().active
    loop = evaluate_algorithm(algorithm, engine="loop").suboptimality
    batch = evaluate_algorithm(algorithm, engine="batch").suboptimality
    assert np.array_equal(loop, batch)


@pytest.mark.parametrize("seed", SEEDS)
def test_active_prior_zero_violations(seed):
    """The full conformance workload passes with the prior on."""
    monitor = ConformanceMonitor()
    outcome = run_workload(seed, monitor, prior="sampled")
    assert monitor.ok, [v.invariant for v in monitor.violations]
    for per_engine in outcome.engines.values():
        assert per_engine["batch"] == "identical"


@pytest.mark.parametrize("seed", SEEDS)
def test_active_prior_respects_guarantee(seed):
    """MSO stays under the closed-form bound with scheduling on."""
    instance = build_conformance_instance(seed)
    for cls in ALGORITHMS.values():
        algorithm = cls(instance.ess, instance.contours,
                        prior=SampledPrior.fit(instance.query))
        evaluation = evaluate_algorithm(algorithm, engine="batch")
        assert evaluation.mso <= algorithm.mso_guarantee() + 1e-9


def test_prior_cuts_cost_at_true_location():
    """At the true qa, prior scheduling is never worse and usually
    cheaper — averaged over seeds it must be a clear win."""
    ratios = []
    for seed in range(8):
        instance = build_conformance_instance(seed)
        qa = instance.query.true_location()
        for cls in ALGORITHMS.values():
            plain = cls(instance.ess, instance.contours)
            warm = cls(instance.ess, instance.contours,
                       prior=SampledPrior.fit(instance.query))
            cost_plain = plain.run(qa).total_cost
            cost_warm = warm.run(qa).total_cost
            ratios.append(cost_plain / cost_warm)
    ratios = np.asarray(ratios)
    assert np.all(ratios >= 1.0 - 1e-12)
    assert ratios.mean() >= 1.2


def test_bench_anytime_smoke():
    from repro.bench.perfbench import bench_anytime

    stats = bench_anytime(num_workloads=3)
    assert stats["workloads"] == 3
    assert stats["violations"] == 0
    assert set(stats["modes"]) == {"uniform", "sampled", "history"}
    for mode in ("sampled", "history"):
        assert stats["modes"][mode]["speedup_mean"] >= 1.0
        assert stats["modes"][mode]["speedup_min"] >= 1.0 - 1e-12


def test_start_contour_metric_observed():
    from repro.obs.metrics import REGISTRY

    instance = build_conformance_instance(SEEDS[0])
    algorithm = SpillBound(instance.ess, instance.contours,
                           prior=SampledPrior.fit(instance.query))
    before = REGISTRY.summary().get("histograms", {}).get(
        "repro_prior_start_contour{prior=sampled}", {}).get("count", 0)
    algorithm.run(instance.ess.grid.num_points - 1)
    after = REGISTRY.summary().get("histograms", {}).get(
        "repro_prior_start_contour{prior=sampled}", {}).get("count", 0)
    assert after == before + 1


# ----------------------------------------------------------------------
# Trajectory merger
# ----------------------------------------------------------------------


def _write(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def test_trajectory_merges_mixed_schemas(tmp_path):
    from repro.bench.trajectory import build_trajectory, render_trajectory

    _write(tmp_path / "BENCH_pr1.json", {
        "schema_version": 1,
        "cache": {"speedup": 33.6},
        "sweeps": {"sb": {"speedup": 0.62}},
    })
    _write(tmp_path / "BENCH_pr2.json", {
        "schema_version": 2,
        "cache": {"speedup": 28.9},
        "sweeps": {"pb": {"speedup": 96.6}, "sb": {"speedup": 6.2}},
        "parallel": {"sb": {"skipped": True, "skip_reason": "single_cpu"}},
    })
    _write(tmp_path / "BENCH_pr8.json", {
        "schema_version": 7,
        "cache": {"speedup": 9.6},
        "sweeps": {"sb": {"speedup": 5.4}},
        "anytime": {"modes": {"sampled": {"speedup_mean": 1.46},
                              "history": {"speedup_mean": 1.46}}},
    })
    _write(tmp_path / "BENCH_pr9.json", {"not": "valid"})
    with open(tmp_path / "BENCH_pr10.json", "w") as handle:
        handle.write("{corrupt")
    merged = build_trajectory(str(tmp_path))
    prs = [a["pr"] for a in merged["artifacts"]]
    assert prs == [1, 2, 8, 9]  # corrupt pr10 skipped, order numeric
    by_key = {m["metric"]: m for m in merged["metrics"]}
    assert by_key["cache_speedup"]["per_pr"][1]["value"] == 33.6
    # v1 "sweeps" are parallel numbers, not batched-sweep ones.
    assert 1 not in by_key["batched_sweep"]["per_pr"]
    assert by_key["batched_sweep"]["per_pr"][2]["display"] == "96.6x (pb)"
    assert by_key["parallel_sweep"]["per_pr"][1]["value"] == 0.62
    assert "skipped" in by_key["parallel_sweep"]["per_pr"][2]["display"]
    assert by_key["anytime_sampled"]["per_pr"][8]["display"] == "1.46x"
    table = render_trajectory(merged)
    assert "PR8" in table and "1.46x" in table


def test_trajectory_on_repo_artifacts():
    """The committed BENCH artifacts merge cleanly."""
    from repro.bench.trajectory import build_trajectory

    repo_root = os.path.join(os.path.dirname(__file__), os.pardir)
    merged = build_trajectory(repo_root)
    assert len(merged["artifacts"]) >= 5
    keys = {m["metric"] for m in merged["metrics"]}
    assert "cache_speedup" in keys
    assert "serving_rps" in keys


def test_cli_trajectory(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    _write(tmp_path / "BENCH_pr1.json", {
        "schema_version": 1, "cache": {"speedup": 12.5},
    })
    out_json = tmp_path / "traj.json"
    assert main(["bench", "--trajectory",
                 "--trajectory-dir", str(tmp_path),
                 "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "12.5x" in out
    assert out_json.exists()
    payload = json.loads(out_json.read_text())
    assert payload["artifacts"][0]["pr"] == 1
    # Empty directory: exit 1 with a message, not a traceback.
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["bench", "--trajectory",
                 "--trajectory-dir", str(empty)]) == 1
