"""Property-based tests (hypothesis) on core invariants.

These pin down the structural facts the MSO analysis rests on: PCM,
grid index arithmetic, histogram consistency, partition enumeration,
budget-ladder geometry, and guarantee compliance at arbitrary qa.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DEFAULT_COST_MODEL, ESSGrid
from repro.core.aligned_bound import set_partitions
from repro.catalog.statistics import EquiDepthHistogram
from repro.optimizer.plans import plan_cost

SETTINGS = dict(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


# ----------------------------------------------------------------------
# Grid arithmetic
# ----------------------------------------------------------------------

@given(
    dims=st.integers(1, 4),
    data=st.data(),
)
@settings(**SETTINGS)
def test_grid_flat_roundtrip(dims, data):
    resolution = data.draw(
        st.lists(st.integers(2, 6), min_size=dims, max_size=dims)
    )
    grid = ESSGrid(dims, resolution=resolution, sel_min=1e-4)
    flat = data.draw(st.integers(0, grid.num_points - 1))
    assert grid.flat_index(grid.coords_of(flat)) == flat


@given(
    dims=st.integers(1, 4),
    data=st.data(),
)
@settings(**SETTINGS)
def test_grid_snap_identity_on_grid_values(dims, data):
    grid = ESSGrid(dims, resolution=6, sel_min=1e-5)
    coords = tuple(
        data.draw(st.integers(0, 5)) for _ in range(dims)
    )
    sels = tuple(grid.selectivity(d, c) for d, c in enumerate(coords))
    assert grid.snap(sels) == coords


@given(
    data=st.data(),
)
@settings(**SETTINGS)
def test_dominance_is_a_partial_order(data):
    grid = ESSGrid(3, resolution=5)
    a = tuple(data.draw(st.integers(0, 4)) for _ in range(3))
    b = tuple(data.draw(st.integers(0, 4)) for _ in range(3))
    c = tuple(data.draw(st.integers(0, 4)) for _ in range(3))
    # Antisymmetry.
    assert not (grid.dominates(a, b) and grid.dominates(b, a))
    # Irreflexivity.
    assert not grid.dominates(a, a)
    # Transitivity.
    if grid.dominates(a, b) and grid.dominates(b, c):
        assert grid.dominates(a, c)


# ----------------------------------------------------------------------
# Cost model / PCM
# ----------------------------------------------------------------------

@given(
    probe=st.floats(1, 1e8),
    build=st.floats(1, 1e8),
    out=st.floats(0, 1e9),
    factor=st.floats(1.0001, 10),
)
@settings(**SETTINGS)
def test_join_costs_monotone_under_inflation(probe, build, out, factor):
    model = DEFAULT_COST_MODEL
    for fn in (model.join_hash, model.join_merge, model.join_nl):
        base = fn(probe, build, out)
        assert fn(probe * factor, build, out) >= base - 1e-9
        assert fn(probe, build * factor, out) >= base - 1e-9
        assert fn(probe, build, out * factor) >= base - 1e-9


@given(
    s0=st.floats(1e-7, 1.0),
    s1=st.floats(1e-7, 1.0),
    f0=st.floats(1.0001, 100),
)
@settings(**SETTINGS)
def test_pcm_for_arbitrary_plan(toy_ess, s0, s1, f0):
    """Cost(P, q') > Cost(P, q) whenever q' strictly dominates q."""
    query = toy_ess.query
    plan = toy_ess.plans[0]
    env = {0: s0, 1: s1}
    inflated = {0: min(s0 * f0, 1.0), 1: s1}
    if inflated[0] <= env[0]:
        return
    base = plan_cost(plan, query, DEFAULT_COST_MODEL, env)
    more = plan_cost(plan, query, DEFAULT_COST_MODEL, inflated)
    assert more > base


# ----------------------------------------------------------------------
# Histogram consistency
# ----------------------------------------------------------------------

@given(
    values=st.lists(st.integers(0, 1000), min_size=5, max_size=300),
    probe=st.integers(-10, 1010),
)
@settings(**SETTINGS)
def test_histogram_cdf_monotone_and_bounded(values, probe):
    hist = EquiDepthHistogram(np.array(values), num_buckets=8)
    sel = hist.selectivity_le(probe)
    assert 0.0 <= sel <= 1.0
    assert hist.selectivity_le(probe + 1) >= sel - 1e-12


@given(
    values=st.lists(st.integers(0, 50), min_size=10, max_size=200),
    low=st.integers(0, 50),
    width=st.integers(0, 50),
)
@settings(**SETTINGS)
def test_histogram_range_additivity(values, low, width):
    hist = EquiDepthHistogram(np.array(values), num_buckets=8)
    sel = hist.selectivity_range(low, low + width)
    assert -1e-12 <= sel <= 1.0 + 1e-12


# ----------------------------------------------------------------------
# Partition enumeration
# ----------------------------------------------------------------------

@given(n=st.integers(0, 6))
@settings(**SETTINGS)
def test_set_partitions_counts_are_bell_numbers(n):
    bell = [1, 1, 2, 5, 15, 52, 203]
    assert len(list(set_partitions(range(n)))) == bell[n]


@given(n=st.integers(1, 5))
@settings(**SETTINGS)
def test_set_partitions_are_partitions(n):
    items = list(range(n))
    for partition in set_partitions(items):
        flat = sorted(x for part in partition for x in part)
        assert flat == items


# ----------------------------------------------------------------------
# Discovery-level guarantees at arbitrary locations
# ----------------------------------------------------------------------

@given(data=st.data())
@settings(deadline=None, max_examples=25,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_sb_guarantee_holds_at_random_locations(toy_sb, data):
    grid = toy_sb.ess.grid
    flat = data.draw(st.integers(0, grid.num_points - 1))
    result = toy_sb.run(flat)
    assert 1.0 - 1e-9 <= result.suboptimality
    assert result.suboptimality <= toy_sb.mso_guarantee() * (1 + 1e-9)


@given(data=st.data())
@settings(deadline=None, max_examples=25,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_pb_guarantee_holds_at_random_locations(toy_pb, data):
    grid = toy_pb.ess.grid
    flat = data.draw(st.integers(0, grid.num_points - 1))
    result = toy_pb.run(flat)
    assert result.suboptimality <= toy_pb.mso_guarantee() * (1 + 1e-9)


@given(data=st.data())
@settings(deadline=None, max_examples=25,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_ab_never_exceeds_quadratic_bound(toy_ab, data):
    grid = toy_ab.ess.grid
    flat = data.draw(st.integers(0, grid.num_points - 1))
    result = toy_ab.run(flat)
    assert result.suboptimality <= toy_ab.mso_guarantee() * (1 + 1e-9)


@given(data=st.data())
@settings(deadline=None, max_examples=20,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_sb_learning_never_overshoots(toy_sb, data):
    grid = toy_sb.ess.grid
    flat = data.draw(st.integers(0, grid.num_points - 1))
    coords = grid.coords_of(flat)
    result = toy_sb.run(flat, trace=True)
    for record in result.executions:
        if record.mode == "spill" and record.completed:
            dim = record.spill_dim
            assert record.learned_selectivity == pytest.approx(
                grid.selectivity(dim, coords[dim])
            )
