"""Unit tests for the SPJ query model."""

import pytest

from repro import QueryError, SPJQuery, filter_pred, join
from tests.conftest import make_toy_query, make_toy_schema


class TestValidation:
    def test_valid_query(self, toy_query):
        assert toy_query.num_epps == 2
        assert len(toy_query.tables) == 3

    def test_unknown_table_rejected(self, toy_schema):
        with pytest.raises(QueryError):
            SPJQuery("q", toy_schema, ["part", "ghost"], joins=[
                join("part", "p_partkey", "ghost", "x", selectivity=0.1),
            ])

    def test_duplicate_table_rejected(self, toy_schema):
        with pytest.raises(QueryError):
            SPJQuery("q", toy_schema, ["part", "part"], joins=[])

    def test_predicate_outside_from_rejected(self, toy_schema):
        with pytest.raises(QueryError):
            SPJQuery("q", toy_schema, ["part", "lineitem"], joins=[
                join("orders", "o_orderkey", "lineitem", "l_orderkey",
                     selectivity=0.1),
            ])

    def test_unknown_column_rejected(self, toy_schema):
        from repro import SchemaError

        with pytest.raises(SchemaError):
            SPJQuery("q", toy_schema, ["part", "lineitem"], joins=[
                join("part", "nope", "lineitem", "l_partkey",
                     selectivity=0.1),
            ])

    def test_disconnected_graph_rejected(self, toy_schema):
        with pytest.raises(QueryError):
            SPJQuery("q", toy_schema, ["part", "lineitem", "orders"], joins=[
                join("part", "p_partkey", "lineitem", "l_partkey",
                     selectivity=0.1),
            ])

    def test_duplicate_predicate_name_rejected(self, toy_schema):
        with pytest.raises(QueryError):
            SPJQuery("q", toy_schema, ["part", "lineitem"], joins=[
                join("part", "p_partkey", "lineitem", "l_partkey",
                     selectivity=0.1, name="dup"),
                join("part", "p_partkey", "lineitem", "l_orderkey",
                     selectivity=0.1, name="dup"),
            ])

    def test_single_table_query_allowed(self, toy_schema):
        query = SPJQuery("q", toy_schema, ["part"], joins=[], filters=[
            filter_pred("part", "p_retailprice", "<", 10, selectivity=0.01),
        ])
        assert query.num_epps == 0


class TestEppAccessors:
    def test_epp_order_follows_declaration(self, toy_query):
        assert toy_query.epp(0).name == "j:part-lineitem"
        assert toy_query.epp(1).name == "j:orders-lineitem"

    def test_epp_dimension_lookup(self, toy_query):
        assert toy_query.epp_dimension("j:orders-lineitem") == 1
        with pytest.raises(QueryError):
            toy_query.epp_dimension("f:part.p_retailprice")

    def test_is_epp(self, toy_query):
        assert toy_query.is_epp("j:part-lineitem")
        assert not toy_query.is_epp("f:part.p_retailprice")

    def test_true_location(self, toy_query):
        assert toy_query.true_location() == (2e-5, 3e-4)


class TestDerivedValues:
    def test_base_selectivity_multiplies_non_epp_filters(self, toy_query):
        assert toy_query.base_selectivity("part") == pytest.approx(0.05)
        assert toy_query.base_selectivity("orders") == 1.0

    def test_filters_on(self, toy_query):
        assert len(toy_query.filters_on("part")) == 1
        assert toy_query.filters_on("lineitem") == []

    def test_describe_marks_epps(self, toy_query):
        text = toy_query.describe()
        assert "[epp]" in text and "chain" in text


class TestWithEpps:
    def test_remark_subset(self):
        query = make_toy_query()
        reduced = query.with_epps(["j:orders-lineitem"])
        assert reduced.num_epps == 1
        assert reduced.epp(0).name == "j:orders-lineitem"

    def test_original_untouched(self):
        query = make_toy_query()
        query.with_epps(["j:orders-lineitem"])
        assert query.num_epps == 2

    def test_unknown_epp_rejected(self):
        query = make_toy_query()
        with pytest.raises(QueryError):
            query.with_epps(["j:ghost"])

    def test_filter_can_become_epp(self):
        query = make_toy_query()
        widened = query.with_epps(
            ["j:part-lineitem", "f:part.p_retailprice"]
        )
        assert widened.num_epps == 2
        assert any(p.name == "f:part.p_retailprice" for p in widened.epps)
