"""Tests for the randomized contour-crossing variant."""

import pytest

from repro.core.randomized import (
    RandomizedSpillBound,
    expected_suboptimality,
    randomized_game_expectation,
)
from tests.conftest import fuzz_seeds

SEEDS = fuzz_seeds([3, 7, 19])


class TestRandomizedSpillBound:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_guarantee_still_holds(self, toy_ess, toy_contours, seed):
        algorithm = RandomizedSpillBound(toy_ess, toy_contours, seed=seed)
        for sample in range(4):
            algorithm.set_sample(sample)
            for flat in [0, 77, 210, 399]:
                result = algorithm.run(flat)
                assert result.suboptimality <= algorithm.mso_guarantee() * (
                    1 + 1e-9
                )
                assert result.suboptimality >= 1.0 - 1e-9

    def test_reproducible_per_sample(self, toy_ess, toy_contours):
        a = RandomizedSpillBound(toy_ess, toy_contours, seed=5)
        b = RandomizedSpillBound(toy_ess, toy_contours, seed=5)
        a.set_sample(2)
        b.set_sample(2)
        assert a.run(150).total_cost == pytest.approx(b.run(150).total_cost)

    def test_different_samples_can_differ(self, star_ess, star_contours):
        algorithm = RandomizedSpillBound(star_ess, star_contours, seed=1)
        costs = set()
        for sample in range(8):
            algorithm.set_sample(sample)
            costs.add(round(algorithm.run(star_ess.grid.num_points // 2)
                            .total_cost, 6))
        # With 3 epps the per-contour order matters at least sometimes.
        assert len(costs) >= 1  # always valid; usually > 1
        # The step planner must be restored after each run.
        assert "_plan_steps" not in algorithm.__dict__

    @pytest.mark.parametrize("seed", SEEDS)
    def test_learning_still_exact(self, toy_ess, toy_contours, seed):
        algorithm = RandomizedSpillBound(toy_ess, toy_contours, seed=seed)
        grid = toy_ess.grid
        coords = (grid.resolution[0] // 2, grid.resolution[1] - 2)
        result = algorithm.run(coords, trace=True)
        for record in result.executions:
            if record.mode == "spill" and record.completed:
                dim = record.spill_dim
                assert record.learned_selectivity == pytest.approx(
                    grid.selectivity(dim, coords[dim])
                )

    def test_expected_suboptimality_bounds(self, toy_ess, toy_contours):
        mean, worst = expected_suboptimality(
            toy_ess, toy_contours, qa=250, samples=6
        )
        assert 1.0 - 1e-9 <= mean <= worst
        assert worst <= 10.0 + 1e-9  # D=2 guarantee


class TestRandomizedGame:
    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_expectation_beats_deterministic(self, d):
        """Against the oblivious adversary the randomized strategy pays
        ~(D+1)/2 in expectation — below the deterministic forced D."""
        expectation = randomized_game_expectation(d, samples=400, seed=1)
        assert expectation < d - 0.25
        assert expectation == pytest.approx((d + 1) / 2, abs=0.5)

    def test_expectation_at_least_one(self):
        assert randomized_game_expectation(3, samples=100) >= 1.0
