"""Unit tests for anorexic reduction."""

import pytest

from repro import AnorexicReduction, DiscoveryError


class TestCoverCorrectness:
    def test_every_contour_point_covered(self, toy_ess, toy_contours):
        reduction = AnorexicReduction(toy_ess, toy_contours, lam=0.2)
        for contour, reduced in zip(toy_contours, reduction.reduced):
            if len(contour.points) == 0:
                assert reduced.plan_ids == []
                continue
            inflated = reduced.inflated_budget
            for flat in contour.points:
                covered = any(
                    toy_ess.plan_cost_at(pid, int(flat)) <= inflated * (1 + 1e-9)
                    for pid in reduced.plan_ids
                )
                assert covered

    def test_reduced_plans_subset_of_contour_plans(self, toy_ess, toy_contours):
        reduction = AnorexicReduction(toy_ess, toy_contours, lam=0.2)
        for contour, reduced in zip(toy_contours, reduction.reduced):
            assert set(reduced.plan_ids) <= set(contour.unique_plan_ids())

    def test_reduction_never_increases_density(self, toy_ess, toy_contours):
        reduction = AnorexicReduction(toy_ess, toy_contours, lam=0.2)
        for contour, reduced in zip(toy_contours, reduction.reduced):
            assert reduced.density <= contour.density

    def test_zero_lambda_requires_exact_cover(self, toy_ess, toy_contours):
        reduction = AnorexicReduction(toy_ess, toy_contours, lam=0.0)
        # With lambda=0 only truly-optimal plans cover their own regions,
        # so the reduction must keep every contour plan region covered.
        assert reduction.rho <= toy_contours.max_density


class TestRhoBehaviour:
    def test_rho_monotone_in_lambda(self, toy_ess, toy_contours):
        rhos = [
            AnorexicReduction(toy_ess, toy_contours, lam=lam).rho
            for lam in (0.0, 0.2, 1.0)
        ]
        assert rhos[0] >= rhos[1] >= rhos[2]

    def test_mso_guarantee_formula(self, toy_ess, toy_contours):
        reduction = AnorexicReduction(toy_ess, toy_contours, lam=0.2)
        assert reduction.mso_guarantee() == pytest.approx(
            4.0 * 1.2 * reduction.rho
        )

    def test_negative_lambda_rejected(self, toy_ess, toy_contours):
        with pytest.raises(DiscoveryError):
            AnorexicReduction(toy_ess, toy_contours, lam=-0.1)

    def test_inflated_budget(self, toy_ess, toy_contours):
        reduction = AnorexicReduction(toy_ess, toy_contours, lam=0.5)
        for reduced in reduction.reduced:
            assert reduced.inflated_budget == pytest.approx(
                1.5 * reduced.budget
            )

    def test_contour_accessor_one_based(self, toy_ess, toy_contours):
        reduction = AnorexicReduction(toy_ess, toy_contours)
        assert reduction.contour(1).index == 1

    def test_plan_order_deterministic(self, toy_ess, toy_contours):
        a = AnorexicReduction(toy_ess, toy_contours, lam=0.2)
        b = AnorexicReduction(toy_ess, toy_contours, lam=0.2)
        assert [rc.plan_ids for rc in a.reduced] == [
            rc.plan_ids for rc in b.reduced
        ]
