"""Unit tests for the schema layer (tables, columns, foreign keys)."""

import pytest

from repro import Column, ForeignKey, Schema, SchemaError, Table, fk_column, key_column


def make_table(name="t", cardinality=100):
    return Table(name, cardinality, [key_column("id", cardinality)])


class TestColumn:
    def test_defaults(self):
        col = Column("c")
        assert col.ndv == 1
        assert not col.indexed
        assert not col.is_key

    def test_rejects_nonpositive_ndv(self):
        with pytest.raises(SchemaError):
            Column("c", ndv=0)

    def test_key_column_helper(self):
        col = key_column("id", 500)
        assert col.is_key and col.indexed and col.ndv == 500

    def test_fk_column_helper_not_key(self):
        col = fk_column("ref", 500)
        assert not col.is_key and col.ndv == 500

    def test_columns_hashable_and_frozen(self):
        col = Column("c", ndv=5)
        assert hash(col) == hash(Column("c", ndv=5))
        with pytest.raises(AttributeError):
            col.ndv = 10


class TestTable:
    def test_basic_properties(self):
        table = Table("t", 42, [key_column("id", 42), Column("x", ndv=7)])
        assert table.cardinality == 42
        assert set(table.columns) == {"id", "x"}
        assert table.primary_key.name == "id"

    def test_no_primary_key(self):
        table = Table("t", 10, [Column("x")])
        assert table.primary_key is None

    def test_rejects_zero_cardinality(self):
        with pytest.raises(SchemaError):
            Table("t", 0, [Column("x")])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError):
            Table("t", 10, [Column("x"), Column("x")])

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_table().column("nope")

    def test_has_column(self):
        table = make_table()
        assert table.has_column("id")
        assert not table.has_column("other")


class TestSchema:
    def test_add_and_fetch_table(self):
        schema = Schema("s", tables=[make_table("a"), make_table("b")])
        assert schema.table("a").name == "a"
        assert set(schema.tables) == {"a", "b"}

    def test_duplicate_table_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", tables=[make_table("a"), make_table("a")])

    def test_unknown_table_raises(self):
        schema = Schema("s")
        with pytest.raises(SchemaError):
            schema.table("ghost")
        assert not schema.has_table("ghost")

    def test_foreign_key_validation(self):
        parent = Table("p", 10, [key_column("id", 10)])
        child = Table("c", 100, [fk_column("p_id", 10)])
        schema = Schema("s", tables=[parent, child])
        schema.add_foreign_key(ForeignKey("c", "p_id", "p", "id"))
        assert len(schema.foreign_keys) == 1

    def test_foreign_key_unknown_column_rejected(self):
        parent = Table("p", 10, [key_column("id", 10)])
        child = Table("c", 100, [fk_column("p_id", 10)])
        schema = Schema("s", tables=[parent, child])
        with pytest.raises(SchemaError):
            schema.add_foreign_key(ForeignKey("c", "missing", "p", "id"))

    def test_join_ndv_uses_max_side(self):
        a = Table("a", 10, [Column("x", ndv=100)])
        b = Table("b", 10, [Column("y", ndv=2000)])
        schema = Schema("s", tables=[a, b])
        assert schema.join_ndv("a", "x", "b", "y") == 2000

    def test_repr_mentions_table_count(self):
        schema = Schema("s", tables=[make_table("a")])
        assert "1 tables" in repr(schema)


class TestWorkloadSchemas:
    def test_tpcds_schema_builds(self):
        from repro import tpcds_schema

        schema = tpcds_schema()
        assert schema.table("store_sales").cardinality == 288_000_000
        assert schema.table("call_center").cardinality == 30
        assert schema.table("customer").primary_key.name == "c_customer_sk"

    def test_job_schema_builds(self):
        from repro import job_schema

        schema = job_schema()
        assert schema.table("title").cardinality == 2_528_312
        assert schema.table("company_type").cardinality == 4
