"""Tests for the concurrent discovery service (repro.serve).

Server-backed tests run a real :class:`DiscoveryServer` (asyncio
front-end + process-pool back-end) on a background thread against a
throw-away archive-cache directory, and talk to it over real sockets
with the load-generator client — the full wire path, not a mock.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.bench import workloads
from repro.core.mso import evaluate_algorithm
from repro.core.spill_bound import SpillBound
from repro.serve import protocol
from repro.serve.loadgen import (
    ServeClient,
    ServerThread,
    percentile,
    run_loadgen,
    scrape_counter,
    solo_result,
)
from repro.serve.server import ServeConfig
from repro.serve.surfaces import SurfaceTier


@pytest.fixture
def serve_env(tmp_path, monkeypatch):
    """Fresh archive cache + cold workload memo for one server test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serve-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    workloads.clear_cache()
    yield
    workloads.clear_cache()


def start_server(**overrides):
    overrides.setdefault("profile", "smoke")
    overrides.setdefault("ess_mode", "eager")
    overrides.setdefault("workers", 2)
    thread = ServerThread(ServeConfig.from_env(**overrides))
    thread.start()
    return thread


def concurrent_discover(host, port, payloads):
    """Fire every payload concurrently; returns (status, obj) per index."""
    results = [None] * len(payloads)

    def drive(index):
        client = ServeClient(host, port)
        try:
            results[index] = client.discover(payloads[index])
        finally:
            client.close()

    threads = [threading.Thread(target=drive, args=(i,))
               for i in range(len(payloads))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


class TestProtocol:
    def test_minimal_request_defaults(self):
        request = protocol.parse_discover({"query": "2D_Q91"})
        assert request.algorithm == "sb"
        assert request.kind == "run"
        assert request.tenant == "default"
        assert request.qa is None

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},
        {"query": ""},
        {"query": "2D_Q91", "algorithm": "nope"},
        {"query": "2D_Q91", "kind": "nope"},
        {"query": "2D_Q91", "kind": "evaluate", "algorithm": "native"},
        {"query": "2D_Q91", "engine": "vector"},
        {"query": "2D_Q91", "ess_mode": "sometimes"},
        {"query": "2D_Q91", "trace": "yes"},
        {"query": "2D_Q91", "qa": []},
        {"query": "2D_Q91", "qa": ["x"]},
        {"query": "2D_Q91", "qa": [float("nan")]},
        {"query": "2D_Q91", "budget_s": -1},
        {"query": "2D_Q91", "resolution": True},
        {"query": "2D_Q91", "resolution": 1},
        {"query": "2D_Q91", "tenant": ""},
        {"query": "2D_Q91", "tenant": "x" * 65},
        {"query": "2D_Q91", "sleep_s": protocol.MAX_SLEEP_S + 1},
        {"query": "2D_Q91", "conformance": "yes"},
    ])
    def test_invalid_requests_raise(self, payload):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_discover(payload)

    def test_parallel_engine_accepted(self):
        request = protocol.parse_discover(
            {"query": "2D_Q91", "kind": "evaluate", "engine": "parallel"})
        assert request.engine == "parallel"

    def test_qa_coerced_to_floats(self):
        request = protocol.parse_discover(
            {"query": "2D_Q91", "qa": [1, "0.5"]}
        )
        assert request.qa == (1.0, 0.5)

    def test_http_message_roundtrip(self):
        async def roundtrip():
            reader = asyncio.StreamReader()
            reader.feed_data(protocol.http_request_payload(
                "POST", "/v1/discover", {"query": "2D_Q91"}
            ))
            reader.feed_eof()
            return await protocol.read_http_message(reader)

        start_line, headers, body = asyncio.run(roundtrip())
        assert start_line.startswith("POST /v1/discover")
        assert headers["content-type"] == "application/json"
        assert json.loads(body) == {"query": "2D_Q91"}

    def test_oversized_body_rejected(self):
        async def read_big():
            reader = asyncio.StreamReader()
            reader.feed_data(
                b"POST / HTTP/1.1\r\ncontent-length: 99\r\n\r\n"
            )
            return await protocol.read_http_message(reader, max_body=10)

        with pytest.raises(protocol.ProtocolError):
            asyncio.run(read_big())

    def test_parse_status(self):
        assert protocol.parse_status("HTTP/1.1 429 Too Many Requests") == 429
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_status("garbage")

    def test_oversized_request_line_rejected(self):
        async def read_long_line():
            reader = asyncio.StreamReader(limit=64)
            reader.feed_data(b"GET /" + b"x" * 1024 + b" HTTP/1.1\r\n\r\n")
            reader.feed_eof()
            return await protocol.read_http_message(reader)

        # A 400-able ProtocolError, not a raw ValueError off readline().
        with pytest.raises(protocol.ProtocolError):
            asyncio.run(read_long_line())

    def test_oversized_header_line_rejected(self):
        async def read_long_header():
            reader = asyncio.StreamReader(limit=64)
            reader.feed_data(b"GET / HTTP/1.1\r\nx-pad: "
                             + b"y" * 1024 + b"\r\n\r\n")
            reader.feed_eof()
            return await protocol.read_http_message(reader)

        with pytest.raises(protocol.ProtocolError):
            asyncio.run(read_long_header())


class TestSurfaceTier:
    """Event-loop-level single-flight semantics with a stub builder."""

    def test_concurrent_acquires_build_once(self):
        async def scenario():
            tier = SurfaceTier(limit_bytes=1 << 20)
            builds = []

            async def builder():
                builds.append(1)
                await asyncio.sleep(0.02)
                return {"key": "k", "segments": {}}, 100, 10

            results = await asyncio.gather(*[
                tier.acquire("fp", builder) for _ in range(8)
            ])
            return builds, results

        builds, results = asyncio.run(scenario())
        assert len(builds) == 1
        sources = sorted(source for _, source in results)
        assert sources.count("built") == 1
        assert sources.count("coalesced") == 7
        assert all(offer == {"key": "k", "segments": {}}
                   for offer, _ in results)

    def test_failed_build_forgotten_then_retried(self):
        async def scenario():
            tier = SurfaceTier(limit_bytes=1 << 20)
            attempts = []

            async def failing():
                attempts.append(1)
                raise RuntimeError("boom")

            async def working():
                return None, 0, 10

            with pytest.raises(RuntimeError):
                await tier.acquire("fp", failing)
            offer, source = await tier.acquire("fp", working)
            return attempts, offer, source

        attempts, offer, source = asyncio.run(scenario())
        assert len(attempts) == 1
        assert offer is None and source == "built"

    def test_lru_eviction_unlinks_by_bytes(self, monkeypatch):
        unlinked = []
        monkeypatch.setattr("repro.serve.surfaces.shm.unlink_offer",
                            lambda offer: unlinked.append(offer["key"]))

        async def scenario():
            tier = SurfaceTier(limit_bytes=250)

            def make_builder(key, nbytes):
                async def builder():
                    return {"key": key, "segments": {}}, nbytes, 1
                return builder

            await tier.acquire("a", make_builder("a", 100))
            await tier.acquire("b", make_builder("b", 100))
            # Touch "a" so "b" is the LRU victim when "c" overflows.
            assert (await tier.acquire("a", make_builder("a", 100)))[1] \
                == "hit"
            await tier.acquire("c", make_builder("c", 100))
            return tier

        tier = asyncio.run(scenario())
        assert unlinked == ["b"]
        assert tier.resident_bytes == 200

    def test_oversized_entry_never_self_evicts(self, monkeypatch):
        unlinked = []
        monkeypatch.setattr("repro.serve.surfaces.shm.unlink_offer",
                            lambda offer: unlinked.append(offer["key"]))

        async def scenario():
            tier = SurfaceTier(limit_bytes=50)

            async def builder():
                return {"key": "big", "segments": {}}, 1000, 1

            offer, _ = await tier.acquire("big", builder)
            return offer

        offer = asyncio.run(scenario())
        assert offer is not None and unlinked == []

    def test_close_during_inflight_build_unlinks(self, monkeypatch):
        unlinked = []
        monkeypatch.setattr("repro.serve.surfaces.shm.unlink_offer",
                            lambda offer: unlinked.append(offer["key"]))

        async def scenario():
            tier = SurfaceTier(limit_bytes=1 << 20)
            release = asyncio.Event()

            async def builder():
                await release.wait()
                return {"key": "late", "segments": {}}, 100, 1

            acquire = asyncio.ensure_future(tier.acquire("fp", builder))
            await asyncio.sleep(0.01)  # the build task is in flight
            tier.close()
            release.set()
            offer, _ = await acquire
            return tier, offer

        tier, offer = asyncio.run(scenario())
        # The tier no longer references the entry, so the segments must
        # be unlinked here or they outlive the server in /dev/shm.
        assert unlinked == ["late"]
        assert offer is None  # moot waiters degrade to the disk path
        assert tier.resident_bytes == 0


class TestSingleFlight:
    def test_concurrent_identical_requests_build_once(self, serve_env):
        thread = start_server()
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            before = client.metrics_text()
            results = concurrent_discover(
                host, port,
                [{"query": "2D_Q91", "sleep_s": 0.05} for _ in range(8)],
            )
            after = client.metrics_text()

            assert all(status == 200 and obj["outcome"] == "ok"
                       for status, obj in results)
            bodies = {json.dumps(obj["result"], sort_keys=True)
                      for _, obj in results}
            assert len(bodies) == 1  # bit-identical across the flight

            label = {"phase": "ess_build"}
            builds = (scrape_counter(after, "repro_phase_runs_total", label)
                      - scrape_counter(before, "repro_phase_runs_total",
                                       label))
            assert builds == 1
            sources = [obj["surface"]["source"] for _, obj in results]
            assert sources.count("built") == 1
            assert all(s in ("built", "coalesced", "hit") for s in sources)
            client.close()
        finally:
            thread.stop()

    def test_served_result_bit_identical_to_solo(self, serve_env):
        thread = start_server()
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            status, served = client.discover({"query": "3D_Q91"})
            assert status == 200 and served["outcome"] == "ok"
            solo = solo_result("3D_Q91", profile="smoke")
            assert (json.dumps(served["result"], sort_keys=True)
                    == json.dumps(solo, sort_keys=True))
            client.close()
        finally:
            thread.stop()

    def test_explicit_qa_round_trips(self, serve_env):
        thread = start_server()
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            instance = workloads.load("2D_Q91", profile="smoke")
            qa = [float(v) for v in instance.query.true_location()]
            status, served = client.discover({"query": "2D_Q91", "qa": qa})
            assert status == 200 and served["outcome"] == "ok"
            solo = solo_result("2D_Q91", profile="smoke", qa=qa)
            assert (json.dumps(served["result"], sort_keys=True)
                    == json.dumps(solo, sort_keys=True))
            client.close()
        finally:
            thread.stop()


class TestAdmission:
    def test_tenant_quota_rejects_429(self, serve_env):
        thread = start_server(workers=1, queue_limit=16, tenant_quota=1)
        try:
            host, port = thread.address
            warm = ServeClient(host, port)
            warm.discover({"query": "2D_Q91"})  # surface built, pool warm
            results = concurrent_discover(host, port, [
                {"query": "2D_Q91", "sleep_s": 1.0, "tenant": "crowd"}
                for _ in range(4)
            ])
            outcomes = [obj["outcome"] for _, obj in results]
            statuses = [status for status, _ in results]
            assert "rejected" in outcomes
            assert 429 in statuses
            rejected = [obj for _, obj in results
                        if obj["outcome"] == "rejected"]
            assert all(obj["reason"] == "tenant_quota" for obj in rejected)
            # Other tenants are unaffected while "crowd" is throttled.
            status, obj = warm.discover(
                {"query": "2D_Q91", "tenant": "other"}
            )
            assert status == 200 and obj["outcome"] == "ok"
            warm.close()
        finally:
            thread.stop()

    def test_queue_full_rejects_429(self, serve_env):
        thread = start_server(workers=1, queue_limit=1, tenant_quota=16)
        try:
            host, port = thread.address
            warm = ServeClient(host, port)
            warm.discover({"query": "2D_Q91"})
            warm.close()
            results = concurrent_discover(host, port, [
                {"query": "2D_Q91", "sleep_s": 1.0, "tenant": f"t{i}"}
                for i in range(6)
            ])
            rejected = [obj for status, obj in results if status == 429]
            assert rejected
            assert all(obj["reason"] == "queue_full" for obj in rejected)
            completed = [obj for status, obj in results if status == 200]
            assert completed  # admitted requests still finish
        finally:
            thread.stop()


class TestCancellation:
    def test_budget_kill_is_cooperative_and_prompt(self, serve_env):
        thread = start_server(workers=1)
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            client.discover({"query": "2D_Q91"})  # warm the surface
            start = time.perf_counter()
            status, obj = client.discover(
                {"query": "2D_Q91", "sleep_s": 8.0, "budget_s": 0.3}
            )
            elapsed = time.perf_counter() - start
            assert status == 200
            assert obj["outcome"] == "killed"
            assert "result" not in obj
            assert elapsed < 4.0  # answered at kill time, not sleep time
            text = client.metrics_text()
            assert scrape_counter(text, "repro_serve_killed_total") >= 1
            client.close()
        finally:
            thread.stop()

    def test_slot_release_deferred_until_detached_task_ends(self):
        """A killed request's slot stays pinned (flag set) while its
        dispatched pool task may still poll it."""
        import multiprocessing

        from repro.serve.server import DiscoveryServer

        async def scenario():
            server = DiscoveryServer(ServeConfig.from_env(
                workers=1, queue_limit=1, tenant_quota=1))
            server._cancel_slots = multiprocessing.Array("b", 4, lock=False)
            server._free_slots = list(range(4))
            state = server._alloc_state()
            pool_future = asyncio.get_running_loop().create_future()
            server._kill(state)
            done, _ = await server._race_cancel(
                pool_future, state, holds_slot=True
            )
            assert not done
            server._release_state(state)
            # The worker still polls: flag stays set, slot stays out.
            assert server._cancel_slots[state.slot] == 1
            assert state.slot not in server._free_slots
            pool_future.set_result({"outcome": "killed"})
            await asyncio.sleep(0.01)  # run the done-callback
            assert server._cancel_slots[state.slot] == 0
            assert state.slot in server._free_slots

        asyncio.run(scenario())

    def test_kill_frees_the_worker_promptly(self, serve_env):
        thread = start_server(workers=1)
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            client.discover({"query": "2D_Q91"})  # warm surface + pool
            status, obj = client.discover(
                {"query": "2D_Q91", "sleep_s": 8.0, "budget_s": 0.2}
            )
            assert status == 200 and obj["outcome"] == "killed"
            # The detached task must see the still-set kill flag at its
            # next ~10ms checkpoint and die — not run its full 8s sleep
            # holding the only worker while the next request queues.
            start = time.perf_counter()
            status, obj = client.discover({"query": "2D_Q91"})
            elapsed = time.perf_counter() - start
            assert status == 200 and obj["outcome"] == "ok"
            assert elapsed < 4.0
            client.close()
        finally:
            thread.stop()


class TestDrain:
    def test_draining_rejects_with_503(self, serve_env):
        thread = start_server(workers=1)
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            thread.server._draining = True
            status, obj = client.discover({"query": "2D_Q91"})
            assert status == 503
            assert obj["outcome"] == "rejected"
            assert obj["reason"] == "draining"
            thread.server._draining = False
            client.close()
        finally:
            thread.stop()

    def test_graceful_drain_finishes_inflight(self, serve_env):
        thread = start_server(workers=1)
        host, port = thread.address
        warm = ServeClient(host, port)
        warm.discover({"query": "2D_Q91"})
        warm.close()
        outcome = {}

        def slow():
            client = ServeClient(host, port)
            try:
                outcome["slow"] = client.discover(
                    {"query": "2D_Q91", "sleep_s": 1.0}
                )
            finally:
                client.close()

        runner = threading.Thread(target=slow)
        runner.start()
        time.sleep(0.4)  # admitted and inside its service time
        thread.submit(thread.server.stop(drain=True), timeout=60)
        runner.join(30)
        status, obj = outcome["slow"]
        assert status == 200 and obj["outcome"] == "ok"
        refused = ServeClient(host, port, timeout=5)
        with pytest.raises(Exception):
            refused.discover({"query": "2D_Q91"})
        refused.close()
        thread.stop()


class TestEndpoints:
    def test_metrics_and_health(self, serve_env):
        thread = start_server()
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            client.discover({"query": "2D_Q91"})
            text = client.metrics_text()
            assert scrape_counter(
                text, "repro_serve_requests_total", {"outcome": "ok"}
            ) >= 1
            assert "repro_serve_latency_seconds_bucket" in text
            assert "repro_serve_cache_resident_bytes" in text
            health = client.health()
            assert health["status"] == "ok"
            assert health["workers"] == 2
            assert health["surfaces"]["entries"] == 1
            client.close()
        finally:
            thread.stop()

    def test_error_paths(self, serve_env):
        thread = start_server()
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            status, _ = client.request("POST", "/v1/discover",
                                       obj=None)  # empty body
            assert status == 400
            status, obj = client.request_json("GET", "/nowhere")
            assert status == 404
            status, obj = client.discover({"query": "no_such_workload"})
            assert status == 400
            assert obj["outcome"] == "invalid"
            status, obj = client.discover(
                {"query": "2D_Q91", "algorithm": "nope"}
            )
            assert status == 400 and obj["outcome"] == "invalid"
            # The connection survives every rejected request above.
            status, obj = client.discover({"query": "2D_Q91"})
            assert status == 200 and obj["outcome"] == "ok"
            client.close()
        finally:
            thread.stop()

    def test_evaluate_kind_matches_local_sweep(self, serve_env):
        thread = start_server()
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            status, served = client.discover(
                {"query": "2D_Q91", "kind": "evaluate", "engine": "batch"}
            )
            assert status == 200 and served["outcome"] == "ok"
            workloads.clear_cache()
            instance = workloads.load("2D_Q91", profile="smoke",
                                      ess_mode="eager")
            local = evaluate_algorithm(
                SpillBound(instance.ess, instance.contours), engine="batch"
            )
            assert served["result"]["mso"] == float(local.mso)
            assert served["result"]["aso"] == float(local.aso)
            assert served["result"]["num_points"] == local.suboptimality.size
            client.close()
        finally:
            thread.stop()

    def test_conformance_reported_clean(self, serve_env):
        thread = start_server()
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            status, obj = client.discover(
                {"query": "2D_Q91", "conformance": True}
            )
            assert status == 200 and obj["outcome"] == "ok"
            assert obj["conformance"]["num_violations"] == 0
            assert obj["conformance"]["checks"].get("runs") == 1
            client.close()
        finally:
            thread.stop()


class TestLoadgen:
    def test_percentile_interpolates(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0

    def test_scrape_counter_label_filtering(self):
        text = (
            'repro_x_total{a="1",b="2"} 3\n'
            'repro_x_total{a="9"} 4\n'
            "repro_y_total 7\n"
            "# HELP repro_x_total whatever\n"
        )
        assert scrape_counter(text, "repro_x_total") == 7.0
        assert scrape_counter(text, "repro_x_total", {"a": "1"}) == 3.0
        assert scrape_counter(text, "repro_y_total") == 7.0
        assert scrape_counter(text, "repro_missing_total") == 0.0

    def test_closed_loop_summary(self, serve_env):
        thread = start_server()
        try:
            host, port = thread.address
            summary = run_loadgen(
                host, port, queries=["2D_Q91"], total=6, concurrency=3,
                tenants=["a", "b"],
            )
            assert summary["requests"] == 6
            assert summary["outcomes"] == {"ok": 6}
            assert summary["rps"] > 0
            latency = summary["latency_s"]
            assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]
            tenants = {r["tenant"] for r in summary["records"]}
            assert tenants == {"a", "b"}
        finally:
            thread.stop()


class TestServeCli:
    def test_parser_accepts_serve_and_loadgen(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--port", "0", "--workers", "2", "--quota", "4"]
        )
        assert args.command == "serve" and args.quota == 4
        args = parser.parse_args(
            ["loadgen", "--queries", "2D_Q91", "--requests", "8",
             "--concurrency", "2", "--json", "out.json"]
        )
        assert args.command == "loadgen"
        assert args.requests == 8


class TestPriorServing:
    def test_prior_request_ok_and_history_recorded(self, serve_env,
                                                   tmp_path, monkeypatch):
        store_path = tmp_path / "serve-history.jsonl"
        monkeypatch.setenv("REPRO_PRIOR_STORE", str(store_path))
        thread = start_server()
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            status, uniform = client.discover({"query": "2D_Q91"})
            assert status == 200 and uniform["outcome"] == "ok"
            assert uniform["prior"] == "uniform"
            # The completed run was recorded for future history priors.
            assert store_path.exists()
            status, sampled = client.discover(
                {"query": "2D_Q91", "prior": "sampled"})
            assert status == 200 and sampled["outcome"] == "ok"
            assert sampled["prior"] == "sampled"
            # Never worse at the true location than the uniform run.
            assert (sampled["result"]["total_cost"]
                    <= uniform["result"]["total_cost"] * (1 + 1e-9))
            status, hist = client.discover(
                {"query": "2D_Q91", "prior": "history"})
            assert status == 200 and hist["outcome"] == "ok"
            status, bad = client.discover(
                {"query": "2D_Q91", "prior": "psychic"})
            assert status == 400 and bad["outcome"] == "invalid"
            client.close()
        finally:
            thread.stop()

    def test_server_default_prior_applies(self, serve_env, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_PRIOR_STORE",
                           str(tmp_path / "h.jsonl"))
        thread = start_server(prior="sampled")
        try:
            host, port = thread.address
            client = ServeClient(host, port)
            status, served = client.discover({"query": "2D_Q91"})
            assert status == 200 and served["outcome"] == "ok"
            assert served["prior"] == "sampled"
            client.close()
        finally:
            thread.stop()
