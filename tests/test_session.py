"""Tests for the deployment session (Section 7 workflow)."""

import pytest

from repro import DiscoveryError
from repro.core.session import RobustSession
from tests.conftest import make_toy_query


@pytest.fixture
def session(tmp_path):
    return RobustSession(cache_dir=tmp_path, algorithm="sb",
                         error_radius=10.0, resolution=10)


class TestPreparation:
    def test_prepare_builds_and_caches(self, session):
        query = make_toy_query()
        first = session.prepare(query)
        second = session.prepare(query)
        assert first is second
        assert first["ess"].posp_size > 0

    def test_persisted_archive_reused(self, tmp_path):
        query = make_toy_query()
        a = RobustSession(cache_dir=tmp_path, resolution=8)
        a.prepare(query)
        archive = tmp_path / f"{query.name}.npz"
        assert archive.exists()
        b = RobustSession(cache_dir=tmp_path, resolution=8)
        bundle = b.prepare(query)
        assert bundle["ess"].posp_size == a.prepare(query)["ess"].posp_size

    def test_no_cache_dir_works(self):
        session = RobustSession(cache_dir=None, resolution=8)
        assert session.prepare(make_toy_query())["ess"] is not None

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(DiscoveryError):
            RobustSession(algorithm="bogus")


class TestRouting:
    def test_small_radius_routes_native(self, tmp_path):
        session = RobustSession(cache_dir=tmp_path, error_radius=1.01,
                                resolution=10)
        decision = session.execute(make_toy_query())
        # At a negligible anticipated error the advisor may keep native;
        # whichever route, the outcome is valid.
        assert decision.route in ("native", "ab", "sb")
        assert decision.suboptimality >= 1.0 - 1e-9

    def test_huge_radius_routes_robust(self, session):
        """JOB-shaped queries flip to robust at large error radii."""
        from repro import q1a

        session.base_error_radius = 1e9
        decision = session.execute(q1a(num_epps=2))
        assert decision.route == "sb"
        assert decision.suboptimality <= 10.0 + 1e-9  # D=2 guarantee

    def test_inherently_robust_query_stays_native(self, session):
        """The toy query's plan diagram is benign: the advisor keeps the
        native optimizer at any radius — and that is the right call."""
        session.base_error_radius = 1e9
        decision = session.execute(make_toy_query())
        if decision.route == "native":
            assert decision.suboptimality <= 10.0 + 1e-9

    def test_decisions_accumulate(self, session):
        query = make_toy_query()
        session.execute(query)
        session.execute(query)
        assert len(session.decisions) == 2
        summary = session.summary()
        assert summary["queries"] == 2
        assert summary["worst_suboptimality"] >= summary[
            "mean_suboptimality"
        ]

    def test_empty_summary(self, session):
        assert session.summary() == {"queries": 0}


class TestFeedbackLoop:
    def test_robust_run_records_learned_selectivities(self, session):
        from repro import q1a

        session.base_error_radius = 1e9
        decision = session.execute(q1a(num_epps=2))
        assert decision.route == "sb"
        assert session.feedback  # something was learnt and recorded

    def test_feedback_sharpens_radius(self, session):
        query = make_toy_query()
        estimate = [1e-7, 1e-7]
        before = session.error_radius_for(query, estimate)
        assert before == session.base_error_radius
        session.record_feedback(query.epps[0].name, 1e-2)  # 1e5x miss
        after = session.error_radius_for(query, estimate)
        assert after > 1e4

    def test_feedback_floor(self, session):
        query = make_toy_query()
        session.record_feedback(query.epps[0].name, 1e-7)
        radius = session.error_radius_for(query, [1e-7, 1e-7])
        assert radius >= 2.0

    def test_bad_history_flips_route_to_robust(self, tmp_path):
        """The deployment story: a burned estimate reroutes the query."""
        from repro import q1a

        session = RobustSession(cache_dir=tmp_path, algorithm="sb",
                                error_radius=1.5, resolution=8)
        query = q1a(num_epps=2)
        first = session.execute(query)
        assert first.route == "native"  # small anticipated error
        # Record a catastrophic historical miss for one epp.
        session.record_feedback(query.epps[0].name, 0.5)
        second = session.execute(query)
        assert second.route == "sb"
        assert second.suboptimality <= 10.0 + 1e-9
