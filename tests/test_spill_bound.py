"""Unit tests for SpillBound: guarantees, lemma properties, traces."""

import math

import numpy as np
import pytest

from repro import SpillBound, evaluate_algorithm
from repro.core.spill_bound import learnable_index


class TestGuarantee:
    def test_formula(self, toy_sb):
        assert toy_sb.mso_guarantee() == 10.0  # D=2: D^2+3D

    def test_static_formula(self):
        assert SpillBound.mso_guarantee_for(4) == 28.0
        assert SpillBound.mso_guarantee_for(6) == 54.0

    def test_empirical_within_guarantee(self, toy_sb):
        evaluation = evaluate_algorithm(toy_sb)
        assert evaluation.mso <= toy_sb.mso_guarantee() * (1 + 1e-9)

    def test_3d_empirical_within_guarantee(self, star_ess, star_contours):
        sb = SpillBound(star_ess, star_contours)
        evaluation = evaluate_algorithm(sb)
        assert evaluation.mso <= sb.mso_guarantee() * (1 + 1e-9)


class TestLearnableIndex:
    def test_threshold_semantics(self):
        curve = np.array([1.0, 2.0, 4.0, 8.0])
        assert learnable_index(curve, 4.0, 0) == 2
        assert learnable_index(curve, 3.9, 0) == 1
        assert learnable_index(curve, 100.0, 0) == 3

    def test_floor_clamp(self):
        curve = np.array([1.0, 2.0, 4.0])
        assert learnable_index(curve, 0.5, 1) == 1


class TestExecutionSemantics:
    def test_terminates_everywhere(self, toy_sb, toy_ess):
        for flat in range(0, toy_ess.grid.num_points, 11):
            result = toy_sb.run(flat)
            assert result.completed_plan_key
            assert result.suboptimality >= 1.0 - 1e-9

    def test_trace_learns_exact_selectivities(self, toy_sb, toy_ess):
        grid = toy_ess.grid
        coords = (grid.resolution[0] // 2, grid.resolution[1] // 2)
        result = toy_sb.run(coords, trace=True)
        for record in result.executions:
            if record.mode == "spill" and record.completed:
                dim = record.spill_dim
                assert record.learned_selectivity == pytest.approx(
                    grid.selectivity(dim, coords[dim])
                )

    def test_half_space_pruning_lemma(self, toy_sb, toy_ess):
        """Lemma 3.1: a failed spill execution proves qa.j > q*.j —
        i.e. the learnt lower bound never overshoots qa's coordinate."""
        grid = toy_ess.grid
        for flat in range(0, grid.num_points, 29):
            coords = grid.coords_of(flat)
            result = toy_sb.run(flat, trace=True)
            for record in result.executions:
                if record.mode == "spill" and not record.completed:
                    dim = record.spill_dim
                    learnt = record.learned_selectivity
                    assert learnt < grid.selectivity(dim, coords[dim]) * (
                        1 + 1e-9
                    )

    def test_cdi_lemma_jump_justified(self, toy_sb, toy_ess, toy_contours):
        """Lemma 3.2/4.3: the algorithm only jumps past contours whose
        budget is below qa's optimal cost."""
        for flat in [50, 180, 333]:
            result = toy_sb.run(flat)
            qa_cost = float(toy_ess.optimal_cost[flat])
            # All contours strictly below the final one were jumped.
            final = result.contours_visited
            for index in range(1, final):
                # qa must lie beyond every fully-failed contour...
                pass
            assert qa_cost <= toy_contours.budget(final) * (1 + 1e-9) or (
                final == toy_contours.num_contours
            )

    def test_fresh_executions_bounded_by_d(self, toy_sb, toy_ess):
        """Lemma 4.4 (first half): at most D fresh executions/contour."""
        d = toy_ess.grid.num_dims
        for flat in range(0, toy_ess.grid.num_points, 23):
            result = toy_sb.run(flat, trace=True)
            per_contour = {}
            for record in result.executions:
                if record.mode == "spill" and record.fresh:
                    per_contour.setdefault(record.contour, 0)
                    per_contour[record.contour] += 1
            assert all(v <= d for v in per_contour.values())

    def test_repeat_executions_bounded(self, toy_sb, toy_ess):
        """Lemma 4.4 (second half): repeats <= D(D-1)/2 in total."""
        d = toy_ess.grid.num_dims
        bound = d * (d - 1) // 2
        for flat in range(0, toy_ess.grid.num_points, 23):
            result = toy_sb.run(flat)
            assert result.num_repeat_executions <= bound

    def test_qrun_monotone_never_overtakes_qa(self, toy_sb, toy_ess):
        grid = toy_ess.grid
        for flat in [120, 260, 399]:
            coords = grid.coords_of(flat)
            result = toy_sb.run(flat, trace=True)
            best = [0.0] * grid.num_dims
            for record in result.executions:
                if record.mode != "spill":
                    continue
                dim = record.spill_dim
                learnt = record.learned_selectivity
                if not math.isnan(learnt):
                    assert learnt >= best[dim] - 1e-12  # monotone advance
                    best[dim] = max(best[dim], learnt)
                    assert best[dim] <= grid.selectivity(
                        dim, coords[dim]
                    ) * (1 + 1e-9)

    def test_one_d_tail_runs_normal_mode(self, toy_sb):
        result = toy_sb.run((5, 15), trace=True)
        modes = [r.mode for r in result.executions]
        # Once a normal-mode (1-D bouquet) execution starts, no spill
        # executions follow.
        if "normal" in modes:
            first_normal = modes.index("normal")
            assert all(m == "normal" for m in modes[first_normal:])

    def test_accounting_consistency(self, toy_sb):
        result = toy_sb.run(77, trace=True)
        assert result.total_cost == pytest.approx(
            sum(r.charged for r in result.executions)
        )
        assert result.num_executions == len(result.executions)

    def test_input_forms_equivalent(self, toy_sb, toy_ess):
        grid = toy_ess.grid
        flat = 133
        coords = grid.coords_of(flat)
        sels = grid.selectivities_of(flat)
        assert toy_sb.run(flat).total_cost == pytest.approx(
            toy_sb.run(coords).total_cost
        )
        assert toy_sb.run(sels).total_cost == pytest.approx(
            toy_sb.run(flat).total_cost
        )


class TestStateCaching:
    def test_cached_and_fresh_instances_agree(self, toy_sb, toy_ess,
                                              toy_contours):
        fresh = SpillBound(toy_ess, toy_contours)
        for flat in [3, 88, 199, 310]:
            assert fresh.run(flat).total_cost == pytest.approx(
                toy_sb.run(flat).total_cost
            )

    def test_step_cache_populated(self, toy_ess, toy_contours):
        sb = SpillBound(toy_ess, toy_contours)
        sb.run(200)
        assert len(sb._step_cache) > 0
