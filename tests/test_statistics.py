"""Unit tests for histograms and the estimation catalog."""

import numpy as np
import pytest

from repro import EquiDepthHistogram, SchemaError, StatisticsCatalog
from tests.conftest import make_toy_schema


class TestEquiDepthHistogram:
    def test_uniform_range_estimates(self):
        hist = EquiDepthHistogram(np.arange(1000), num_buckets=20)
        assert hist.selectivity_le(499) == pytest.approx(0.5, abs=0.05)
        assert hist.selectivity_le(-5) == 0.0
        assert hist.selectivity_le(2000) == 1.0

    def test_range_selectivity(self):
        hist = EquiDepthHistogram(np.arange(1000), num_buckets=20)
        sel = hist.selectivity_range(250, 749)
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_inverted_range_is_zero(self):
        hist = EquiDepthHistogram(np.arange(100))
        assert hist.selectivity_range(50, 10) == 0.0

    def test_equality_uses_ndv(self):
        hist = EquiDepthHistogram(np.repeat(np.arange(10), 100))
        assert hist.ndv == 10
        assert hist.selectivity_eq(3) == pytest.approx(0.1)

    def test_equality_outside_domain(self):
        hist = EquiDepthHistogram(np.arange(100))
        assert hist.selectivity_eq(-1) == 0.0
        assert hist.selectivity_eq(101) == 0.0

    def test_skewed_data_quantile_boundaries(self):
        values = np.concatenate([np.zeros(900), np.arange(100)])
        hist = EquiDepthHistogram(values, num_buckets=10)
        # 90% of the mass is at zero: sel(<= 0) must be large.
        assert hist.selectivity_le(0) > 0.5

    def test_empty_column_rejected(self):
        with pytest.raises(SchemaError):
            EquiDepthHistogram(np.array([]))

    def test_num_buckets_capped_by_rows(self):
        hist = EquiDepthHistogram(np.arange(5), num_buckets=32)
        assert hist.num_buckets == 5

    def test_min_max(self):
        hist = EquiDepthHistogram(np.array([3, 9, 5]))
        assert hist.min_value == 3
        assert hist.max_value == 9


class TestStatisticsCatalog:
    @pytest.fixture
    def catalog(self):
        return StatisticsCatalog(make_toy_schema())

    def test_analyze_builds_histogram(self, catalog):
        catalog.analyze("part", "p_retailprice", np.arange(10_000))
        stats = catalog.column_stats("part", "p_retailprice")
        assert stats is not None
        assert stats.ndv == 10_000

    def test_analyze_unknown_column_rejected(self, catalog):
        with pytest.raises(SchemaError):
            catalog.analyze("part", "missing", np.arange(10))

    def test_sampled_analyze_is_seeded(self, catalog):
        values = np.arange(100_000)
        catalog.analyze("part", "p_retailprice", values, sample=1000, seed=3)
        first = catalog.estimate_filter("part", "p_retailprice", high=5_000)
        catalog.analyze("part", "p_retailprice", values, sample=1000, seed=3)
        assert catalog.estimate_filter(
            "part", "p_retailprice", high=5_000
        ) == pytest.approx(first)

    def test_filter_estimate_range(self, catalog):
        catalog.analyze("part", "p_retailprice", np.arange(10_000))
        sel = catalog.estimate_filter("part", "p_retailprice", high=999)
        assert sel == pytest.approx(0.1, abs=0.02)

    def test_filter_estimate_without_stats_uses_magic(self, catalog):
        sel = catalog.estimate_filter("part", "p_retailprice", high=10)
        assert sel == pytest.approx(1.0 / 3.0)

    def test_equality_estimate_without_stats_uses_ndv(self, catalog):
        sel = catalog.estimate_filter("part", "p_retailprice", value=7)
        assert sel == pytest.approx(1.0 / 30_000)

    def test_join_estimate_max_ndv_rule(self, catalog):
        sel = catalog.estimate_join("part", "p_partkey",
                                    "lineitem", "l_partkey")
        assert sel == pytest.approx(1.0 / 2_000_000)

    def test_ndv_override(self, catalog):
        catalog.set_column_ndv("lineitem", "l_partkey", 10)
        assert catalog.column_ndv("lineitem", "l_partkey") == 10
        # An analyze takes precedence over the override.
        catalog.analyze("lineitem", "l_partkey", np.arange(500))
        assert catalog.column_ndv("lineitem", "l_partkey") == 500

    def test_estimation_error_vs_skewed_truth(self, catalog):
        """The raison d'etre of the paper: uniform estimates miss skew."""
        rng = np.random.default_rng(0)
        skewed = rng.zipf(1.5, size=20_000)
        catalog.analyze("lineitem", "l_partkey", skewed, num_buckets=8)
        true_top = float(np.mean(skewed == 1))
        estimate = catalog.estimate_filter("lineitem", "l_partkey", value=1)
        assert estimate < true_top  # underestimates the hot value
