"""Tests for the SVG figure renderers: well-formedness and geometry.

No rasterizer is available offline, so beyond XML well-formedness these
tests audit the geometry programmatically: every mark inside the
viewBox, mark thickness within spec, gaps present, and no co-located
text elements (the label-collision failure mode).
"""

import re
import xml.dom.minidom

import pytest

from repro.bench.svgfig import (
    grouped_bar_chart,
    histogram_chart,
    line_chart,
    step_trace_chart,
)

BAR_SERIES = [
    ("PlanBouquet", [14.3, 22.7, 31.9, 5.9]),
    ("SpillBound", [6.3, 10.3, 10.8, 2.3]),
]
CATEGORIES = ["3D_Q15", "3D_Q96", "4D_Q7", "4D_Q91"]


def parse(svg):
    return xml.dom.minidom.parseString(svg)


def extents(svg):
    match = re.search(r'width="(\d+)" height="(\d+)"', svg)
    return float(match.group(1)), float(match.group(2))


def all_numbers(svg, attr):
    return [float(v) for v in re.findall(rf'{attr}="([-0-9.]+)"', svg)]


class TestWellFormedness:
    def test_bar_chart_parses(self):
        parse(grouped_bar_chart("T", CATEGORIES, BAR_SERIES, subtitle="s"))

    def test_line_chart_parses(self):
        parse(line_chart("T", [2, 3, 4], BAR_SERIES, subtitle="s"))

    def test_histogram_parses(self):
        parse(histogram_chart("T", [0, 5, 10],
                              [("A", [0.9, 0.1]), ("B", [0.7, 0.3])]))

    def test_trace_parses(self):
        parse(step_trace_chart("T", [(1e-5, 1e-5), (1e-3, 1e-5),
                                     (1e-3, 1e-2)], qa=(0.04, 0.1)))

    def test_escaping(self):
        svg = grouped_bar_chart("a < b & c", CATEGORIES, BAR_SERIES)
        parse(svg)
        assert "a &lt; b &amp; c" in svg


class TestGeometry:
    def test_everything_inside_viewbox(self):
        svg = grouped_bar_chart("T", CATEGORIES, BAR_SERIES, subtitle="s")
        width, height = extents(svg)
        for attr, limit in (("x", width), ("x1", width), ("x2", width),
                            ("cx", width)):
            for value in all_numbers(svg, attr):
                assert -1 <= value <= limit + 1
        for attr in ("y", "y1", "y2", "cy"):
            for value in all_numbers(svg, attr):
                assert -1 <= value <= height + 1

    def test_bar_thickness_within_spec(self):
        svg = grouped_bar_chart("T", CATEGORIES, BAR_SERIES)
        # Bars are drawn as rounded paths; widths appear as H segments.
        # Check the declared thickness through the legend swatch rects
        # and any plain rects instead: none wider than the 24px cap
        # among data marks (the surface rect is exempt).
        data_rects = re.findall(
            r'<rect x="[-0-9.]+" y="[-0-9.]+" width="([0-9.]+)"', svg
        )
        for w in data_rects:
            assert float(w) <= 24.0 + 1e-6 or float(w) >= 400  # surface

    def test_no_colocated_text(self):
        """Two text elements must not share an anchor position (the
        collision smell the renderer is designed to avoid)."""
        for svg in (
            grouped_bar_chart("T", CATEGORIES, BAR_SERIES, subtitle="s",
                              y_label="MSO"),
            line_chart("T", [2, 3, 4, 5], BAR_SERIES, subtitle="s",
                       y_label="MSO"),
        ):
            positions = re.findall(r'<text x="([-0-9.]+)" y="([-0-9.]+)"',
                                   svg)
            assert len(positions) == len(set(positions))

    def test_bars_grow_from_common_baseline(self):
        from collections import Counter

        svg = grouped_bar_chart("T", CATEGORIES, BAR_SERIES)
        baselines = Counter(
            round(float(m), 1)
            for m in re.findall(r'<path d="M[-0-9.]+,([0-9.]+) V', svg)
        )
        # All data bars share one baseline (legend swatches are the only
        # other rounded rects).
        num_bars = len(CATEGORIES) * len(BAR_SERIES)
        assert baselines.most_common(1)[0][1] == num_bars

    def test_legend_present_for_two_series(self):
        svg = grouped_bar_chart("T", CATEGORIES, BAR_SERIES)
        assert "PlanBouquet" in svg and "SpillBound" in svg

    def test_selective_labels_not_every_bar(self):
        svg = grouped_bar_chart("T", CATEGORIES, BAR_SERIES)
        value_labels = re.findall(r'text-anchor="middle"[^>]*>([0-9.]+)<',
                                  svg)
        # One extreme label per series, not one per bar.
        assert 0 < len(value_labels) <= len(BAR_SERIES) + 1

    def test_line_markers_have_surface_rings(self):
        svg = line_chart("T", [2, 3, 4], BAR_SERIES)
        rings = svg.count('r="6.0" fill="#fcfcfb"')
        dots = svg.count('r="4.0" fill="#')
        assert rings >= dots - 2  # every data dot ringed


class TestFigureAssembly:
    def test_render_all_figures(self, tmp_path):
        from repro.bench.figures import render_all_figures

        paths = render_all_figures(tmp_path, profile="smoke")
        assert len(paths) == 7
        for path in paths:
            assert path.exists()
            parse(path.read_text())
