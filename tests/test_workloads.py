"""Tests for the TPC-DS / JOB workload definitions and the registry."""

import pytest

from repro import QueryError, build_query, q1a, suite_names
from repro.bench import workloads
from repro.catalog.tpcds import EPP_SELECTIONS, QUERY_BUILDERS


class TestQueryBuilders:
    @pytest.mark.parametrize("name", sorted(QUERY_BUILDERS))
    def test_base_queries_build(self, name):
        query = QUERY_BUILDERS[name]()
        assert len(query.tables) >= 3  # extended suite has 3-table stars
        assert query.join_graph.is_connected()
        assert query.num_epps == len(query.joins)  # all joins epp-able

    def test_paper_suite_has_four_plus_relations(self):
        from repro import suite_names

        for name in suite_names():
            query = build_query(name)
            assert len(query.tables) >= 4  # paper Section 6.1

    def test_extended_suite_builds(self):
        from repro.catalog.tpcds import extended_suite_names

        for name in extended_suite_names():
            query = build_query(name)
            assert query.num_epps == int(name.split("D_")[0])

    @pytest.mark.parametrize("name", sorted(EPP_SELECTIONS))
    def test_suite_instances_have_declared_dimensionality(self, name):
        query = build_query(name)
        expected = int(name.split("D_")[0])
        assert query.num_epps == expected
        assert query.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(QueryError):
            build_query("9D_Q99")

    def test_suite_names_all_resolvable(self):
        for name in suite_names():
            assert build_query(name).num_epps == int(name.split("D_")[0])

    def test_q91_geometry_is_branch(self):
        assert build_query("6D_Q91").join_graph.geometry() == "branch"

    def test_q7_geometry_is_star(self):
        assert build_query("4D_Q7").join_graph.geometry() == "star"

    def test_q18_uses_demographics_alias(self):
        query = build_query("6D_Q18")
        assert "customer_demographics_2" in query.tables

    def test_epps_are_join_predicates(self):
        for name in suite_names():
            query = build_query(name)
            for pred in query.epps:
                assert hasattr(pred, "left_table")  # JoinPredicate

    def test_true_locations_within_unit_cube(self):
        for name in suite_names():
            for sel in build_query(name).true_location():
                assert 0 < sel <= 1


class TestJob:
    def test_q1a_default_three_epps(self):
        query = q1a()
        assert query.num_epps == 3
        assert not query.join_graph.has_cycle()  # implicit preds shut off

    def test_q1a_epps_configurable(self):
        assert q1a(num_epps=2).num_epps == 2
        assert q1a(num_epps=4).num_epps == 4

    def test_q1a_chain_geometry(self):
        assert q1a().join_graph.geometry() == "chain"


class TestRegistry:
    def test_load_caches(self):
        a = workloads.load("3D_Q15", profile="smoke")
        b = workloads.load("3D_Q15", profile="smoke")
        assert a is b

    def test_load_job_instance(self):
        instance = workloads.load("2D_JOB1a", profile="smoke")
        assert instance.num_epps == 2

    def test_qa_within_grid(self):
        instance = workloads.load("3D_Q15", profile="smoke")
        coords = instance.qa_coords()
        grid = instance.ess.grid
        sels = [grid.selectivity(d, c) for d, c in enumerate(coords)]
        truth = instance.query.true_location()
        for sel, true_sel in zip(sels, truth):
            assert sel == pytest.approx(true_sel, rel=2.0)  # on-grid snap

    def test_resolution_override(self):
        instance = workloads.load("3D_Q15", resolution=5)
        assert instance.ess.grid.shape == (5, 5, 5)

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(QueryError):
            workloads.active_profile()

    def test_profiles_table_complete(self):
        for profile in workloads.RESOLUTION_PROFILES.values():
            assert set(profile) == {2, 3, 4, 5, 6}
